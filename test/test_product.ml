(* Tests for the product composition functor and linearizability
   locality (paper §2.3): a product-object run is linearizable, and so
   is each per-object projection. *)

module RQ = Spec.Product.Make (Spec.Register) (Spec.Fifo_queue)
module Sem = Spec.Data_type.Semantics (RQ)
module Check = Lin.Checker.Make (RQ)
module RegCheck = Lin.Checker.Make (Spec.Register)
module QCheckr = Lin.Checker.Make (Spec.Fifo_queue)
module Algo = Core.Wtlw.Make (RQ)

let rat = Rat.make
let model = Sim.Model.make_optimal_eps ~n:4 ~d:(rat 10 1) ~u:(rat 4 1)

let test_sequential_semantics () =
  let instances, (reg, queue) =
    Sem.perform_seq
      [
        RQ.Left (Spec.Register.Write 7);
        RQ.Right (Spec.Fifo_queue.Enqueue 1);
        RQ.Left Spec.Register.Read;
        RQ.Right Spec.Fifo_queue.Dequeue;
      ]
  in
  Alcotest.(check bool) "sides do not interfere" true (reg = 7 && Spec.Fifo_queue.to_list queue = []);
  Alcotest.(check bool) "legal" true (Sem.legal instances);
  let responses = List.map (fun (i : Sem.instance) -> i.resp) instances in
  Alcotest.(check bool) "responses routed to the right side" true
    (responses
    = [
        RQ.Left_r Spec.Register.Ack;
        RQ.Right_r Spec.Fifo_queue.Ack;
        RQ.Left_r (Spec.Register.Value 7);
        RQ.Right_r (Spec.Fifo_queue.Got (Some 1));
      ])

let test_operations_tagged () =
  Alcotest.(check int) "2 + 3 operations" 5 (List.length RQ.operations);
  Alcotest.(check bool) "kinds preserved" true
    (List.assoc "l:write" RQ.operations = Spec.Op_kind.Pure_mutator
    && List.assoc "l:read" RQ.operations = Spec.Op_kind.Pure_accessor
    && List.assoc "r:dequeue" RQ.operations = Spec.Op_kind.Mixed);
  List.iter
    (fun (op, _) ->
      let samples = RQ.sample_invocations op in
      Alcotest.(check bool)
        (op ^ " samples tagged consistently")
        true
        (samples <> [] && List.for_all (fun inv -> RQ.op_of inv = op) samples))
    RQ.operations

(* Classification is preserved through the product. *)
let test_classification_preserved () =
  let module C = Spec.Classify.Make (RQ) in
  let u = C.default_universe () in
  Alcotest.(check bool) "l:write last-sensitive" true
    (C.is_last_sensitive u ~k:2 "l:write");
  Alcotest.(check bool) "r:enqueue last-sensitive" true
    (C.is_last_sensitive u ~k:2 "r:enqueue");
  Alcotest.(check bool) "r:dequeue pair-free" true (C.is_pair_free u "r:dequeue");
  Alcotest.(check bool) "l:read pure accessor" true
    (C.discovered_kind u "l:read" = Some Spec.Op_kind.Pure_accessor);
  (* Overwriter-ness is NOT preserved by products: a left write resets
     only the register half, so interposing a right-side mutator leaves
     a different (queue) state — the checker correctly demotes it. *)
  Alcotest.(check bool) "l:write no longer an overwriter" false
    (C.is_overwriter u "l:write")

let project ops =
  let left =
    List.filter_map
      (fun (op : (RQ.invocation, RQ.response) Sim.Trace.operation) ->
        match (op.inv, op.resp) with
        | RQ.Left inv, RQ.Left_r resp ->
            Some { op with Sim.Trace.inv; resp }
        | _ -> None)
      ops
  in
  let right =
    List.filter_map
      (fun (op : (RQ.invocation, RQ.response) Sim.Trace.operation) ->
        match (op.inv, op.resp) with
        | RQ.Right inv, RQ.Right_r resp ->
            Some { op with Sim.Trace.inv; resp }
        | _ -> None)
      ops
  in
  (left, right)

let test_wtlw_over_product_and_locality () =
  List.iter
    (fun seed ->
      let cluster =
        Algo.create ~model ~x:(rat 2 1)
          ~offsets:[| Rat.zero; rat 1 1; rat (-1) 1; rat 3 2 |]
          ~delay:(Sim.Net.random_model ~seed model)
          ()
      in
      let rng = Random.State.make [| seed |] in
      for k = 0 to 19 do
        Sim.Engine.schedule_invoke cluster.engine
          ~at:(rat (k * 30) 1)
          ~proc:(k mod 4) (RQ.gen_invocation rng)
      done;
      Sim.Engine.run cluster.engine;
      let ops = Sim.Trace.operations (Sim.Engine.trace cluster.engine) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: product run linearizable" seed)
        true (Check.is_linearizable ops);
      (* Locality: each projection is linearizable on its own. *)
      let left, right = project ops in
      Alcotest.(check int) "all ops projected" (List.length ops)
        (List.length left + List.length right);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: register projection linearizable" seed)
        true
        (RegCheck.is_linearizable left);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: queue projection linearizable" seed)
        true
        (QCheckr.is_linearizable right))
    [ 1; 2; 3 ]

(* A corrupted product history fails, and the failure localizes to the
   side that was corrupted. *)
let test_locality_of_violations () =
  let mk ~proc ~inv ~resp ~s ~e : Check.op =
    { proc; inv; resp; inv_time = rat s 1; resp_time = rat e 1 }
  in
  let history =
    [
      mk ~proc:0 ~inv:(RQ.Left (Spec.Register.Write 1))
        ~resp:(RQ.Left_r Spec.Register.Ack) ~s:0 ~e:1;
      mk ~proc:1 ~inv:(RQ.Right (Spec.Fifo_queue.Enqueue 9))
        ~resp:(RQ.Right_r Spec.Fifo_queue.Ack) ~s:2 ~e:3;
      (* corrupted read: register holds 1 *)
      mk ~proc:0 ~inv:(RQ.Left Spec.Register.Read)
        ~resp:(RQ.Left_r (Spec.Register.Value 5)) ~s:4 ~e:5;
      mk ~proc:1 ~inv:(RQ.Right Spec.Fifo_queue.Peek)
        ~resp:(RQ.Right_r (Spec.Fifo_queue.Got (Some 9))) ~s:6 ~e:7;
    ]
  in
  Alcotest.(check bool) "product history rejected" false
    (Check.is_linearizable history);
  let left, right = project history in
  Alcotest.(check bool) "left projection rejected" false
    (RegCheck.is_linearizable left);
  Alcotest.(check bool) "right projection fine" true
    (QCheckr.is_linearizable right)

let () =
  Alcotest.run "product"
    [
      ( "product",
        [
          Alcotest.test_case "sequential semantics" `Quick
            test_sequential_semantics;
          Alcotest.test_case "operations tagged" `Quick test_operations_tagged;
          Alcotest.test_case "classification preserved" `Quick
            test_classification_preserved;
          Alcotest.test_case "wtlw + locality" `Quick
            test_wtlw_over_product_and_locality;
          Alcotest.test_case "violations localize" `Quick
            test_locality_of_violations;
        ] );
    ]
