(* Static-analysis tests: every bundled data type must come out of all
   passes with zero error findings, and a deliberately broken fixture
   (mis-declared Op_kind, non-deterministic apply, non-canonical
   show_state) must be flagged with concrete witnesses. *)

(* Plain substring search (no Str dependency). *)
let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let has ?(with_witness = false) ~rule ~subject_sub findings =
  List.exists
    (fun (d : Analysis.Diagnostic.t) ->
      String.equal d.rule rule
      && contains ~sub:subject_sub d.subject
      && ((not with_witness) || Option.is_some d.witness))
    findings

let errors findings =
  List.filter
    (fun (d : Analysis.Diagnostic.t) -> d.severity = Analysis.Diagnostic.Error)
    findings

let pp_errors findings =
  String.concat "\n"
    (List.map
       (fun d -> Format.asprintf "%a" Analysis.Diagnostic.pp d)
       (errors findings))

(* ---------- all bundled types are clean ---------- *)

let test_bundled_types_clean () =
  List.iter
    (fun (t : Analysis.Auditor.target) ->
      let findings = Analysis.Auditor.audit_target t in
      Alcotest.(check int)
        (Printf.sprintf "%s: zero analysis errors\n%s" t.name
           (pp_errors findings))
        0
        (List.length (errors findings)))
    Analysis.Auditor.targets

let test_bound_tables_clean () =
  let findings = Analysis.Bound_audit.run () in
  Alcotest.(check int)
    (Printf.sprintf "bound tables: zero analysis errors\n%s"
       (pp_errors findings))
    0
    (List.length (errors findings));
  (* the audit actually covered something *)
  Alcotest.(check bool)
    "preconditions were confirmed" true
    (has ~rule:"bounds.precondition-ok" ~subject_sub:"table2-queue" findings)

let test_audit_all_report () =
  let report = Analysis.Auditor.audit_all () in
  Alcotest.(check bool) "no errors" false (Analysis.Report.has_errors report);
  Alcotest.(check int) "exit code 0" 0 (Analysis.Report.exit_code report);
  let json = Format.asprintf "%a" Analysis.Report.pp_json report in
  Alcotest.(check bool)
    "json has findings array" true
    (contains ~sub:"{\"findings\":[" json);
  Alcotest.(check bool)
    "json records severities" true
    (contains ~sub:"\"severity\":\"info\"" json)

(* ---------- the broken fixture ---------- *)

(* Everything §2.1 forbids in one spec: [bump] is declared a pure
   accessor but increments the state; [noise] answers through a mutable
   counter ([apply] non-deterministic); [show_state] renders every
   state identically (memo-table poison). *)
module Broken = struct
  type state = int
  type invocation = Bump | Noise | Probe
  type response = Ack | Val of int

  let name = "broken-fixture"
  let initial = 0
  let nondet = ref 0

  let apply s = function
    | Bump -> (s + 1, Ack)
    | Noise ->
        incr nondet;
        (s, Val !nondet)
    | Probe -> (s, Val s)

  let op_of = function Bump -> "bump" | Noise -> "noise" | Probe -> "probe"

  let operations =
    [
      ("bump", Spec.Op_kind.Pure_accessor);
      ("noise", Spec.Op_kind.Pure_accessor);
      ("probe", Spec.Op_kind.Pure_accessor);
    ]

  let equal_state = Int.equal
  let equal_invocation (a : invocation) b = a = b
  let equal_response (a : response) b = a = b
  let show_state _ = "opaque"
  let pp_state ppf s = Format.fprintf ppf "%d" s

  let pp_invocation ppf inv =
    Format.pp_print_string ppf
      (match inv with Bump -> "Bump" | Noise -> "Noise" | Probe -> "Probe")

  let pp_response ppf = function
    | Ack -> Format.pp_print_string ppf "Ack"
    | Val v -> Format.fprintf ppf "Val %d" v

  let sample_invocations = function
    | "bump" -> [ Bump ]
    | "noise" -> [ Noise ]
    | "probe" -> [ Probe ]
    | op -> invalid_arg ("broken-fixture: unknown operation " ^ op)

  let gen_invocation rng =
    match Random.State.int rng 3 with 0 -> Bump | 1 -> Noise | _ -> Probe

  let gen_tagged rng ~tag:_ = gen_invocation rng

  let monitor = None
end

let test_broken_spec_lint () =
  let module L = Analysis.Spec_lint.Make (Broken) in
  let findings = L.run () in
  Alcotest.(check bool)
    "non-deterministic apply flagged with witness" true
    (has ~with_witness:true ~rule:"spec.determinism" ~subject_sub:"noise"
       findings);
  Alcotest.(check bool)
    "show_state collision flagged with witness" true
    (has ~with_witness:true ~rule:"spec.show-state-collision"
       ~subject_sub:"broken-fixture" findings)

let test_broken_class_audit () =
  let module A = Analysis.Class_audit.Make (Broken) in
  let findings = A.run () in
  Alcotest.(check bool)
    "mis-declared bump flagged with witness" true
    (has ~with_witness:true ~rule:"class.kind-mismatch" ~subject_sub:"bump"
       findings);
  (* the witness names the state-changing instance *)
  let witness =
    List.find_map
      (fun (d : Analysis.Diagnostic.t) ->
        if d.rule = "class.kind-mismatch" && contains ~sub:"bump" d.subject
        then d.witness
        else None)
      findings
  in
  Alcotest.(check bool)
    "witness mentions the Bump instance" true
    (match witness with Some w -> contains ~sub:"Bump" w | None -> false)

let test_broken_report_gates () =
  let findings =
    (let module L = Analysis.Spec_lint.Make (Broken) in
     L.run ())
    @
    let module A = Analysis.Class_audit.Make (Broken) in
    A.run ()
  in
  let report = Analysis.Report.of_findings findings in
  Alcotest.(check bool) "has errors" true (Analysis.Report.has_errors report);
  Alcotest.(check int) "exit code 1" 1 (Analysis.Report.exit_code report);
  (* errors sort first in the rendered report *)
  match Analysis.Report.findings report with
  | first :: _ ->
      Alcotest.(check bool)
        "errors lead the report" true
        (first.severity = Analysis.Diagnostic.Error)
  | [] -> Alcotest.fail "empty report"

(* ---------- monitor audit ---------- *)

(* The bundled queue viewer, re-declared as a stack: the discipline
   probe must refute the lie with the concrete replay as witness. *)
module Lying_queue = struct
  include Spec.Fifo_queue

  let monitor =
    Option.map
      (fun vw -> { vw with Spec.Adt_view.kind = Spec.Adt_view.Stack })
      monitor
end

let test_monitor_audit_verified () =
  let module MA = Analysis.Monitor_audit.Make (Spec.Fifo_queue) in
  let findings = MA.run () in
  Alcotest.(check bool)
    "queue viewer confirmed" true
    (has ~rule:"monitor.verified" ~subject_sub:"fifo-queue" findings)

let test_monitor_audit_lying_kind () =
  let module MA = Analysis.Monitor_audit.Make (Lying_queue) in
  let findings = MA.run () in
  Alcotest.(check bool)
    "mis-declared kind refuted with a replay witness" true
    (has ~with_witness:true ~rule:"monitor.kind-witness"
       ~subject_sub:"fifo-queue" findings);
  Alcotest.(check bool)
    "no false verification" false
    (has ~rule:"monitor.verified" ~subject_sub:"fifo-queue" findings)

let test_monitor_audit_unmonitored () =
  let module MA = Analysis.Monitor_audit.Make (Spec.Counter_type) in
  let findings = MA.run () in
  Alcotest.(check bool)
    "unmonitored type reported as wing-gong-only" true
    (has ~rule:"monitor.none" ~subject_sub:"counter" findings);
  Alcotest.(check int) "and nothing else" 1 (List.length findings)

(* ---------- renderer escaping ---------- *)

let test_json_escaping () =
  let d =
    Analysis.Diagnostic.error ~rule:"x.y" ~subject:"s"
      ~witness:"quote \" backslash \\ newline \n tab \t"
      "m"
  in
  let json = Format.asprintf "%a" Analysis.Diagnostic.pp_json d in
  Alcotest.(check bool) "escaped quote" true (contains ~sub:"\\\"" json);
  Alcotest.(check bool) "escaped newline" true (contains ~sub:"\\n" json);
  Alcotest.(check bool) "no raw newline" false (contains ~sub:"\n" json)

let () =
  Alcotest.run "analysis"
    [
      ( "clean on bundled artifacts",
        [
          Alcotest.test_case "all ten data types" `Quick
            test_bundled_types_clean;
          Alcotest.test_case "bound tables" `Quick test_bound_tables_clean;
          Alcotest.test_case "aggregate report + json" `Quick
            test_audit_all_report;
        ] );
      ( "monitor audit",
        [
          Alcotest.test_case "bundled queue viewer verified" `Quick
            test_monitor_audit_verified;
          Alcotest.test_case "lying kind refuted" `Quick
            test_monitor_audit_lying_kind;
          Alcotest.test_case "unmonitored type is info-only" `Quick
            test_monitor_audit_unmonitored;
        ] );
      ( "broken fixture is flagged",
        [
          Alcotest.test_case "spec lint: determinism, show_state" `Quick
            test_broken_spec_lint;
          Alcotest.test_case "class audit: kind mismatch witness" `Quick
            test_broken_class_audit;
          Alcotest.test_case "report gates (exit 1, errors first)" `Quick
            test_broken_report_gates;
        ] );
      ( "renderers",
        [ Alcotest.test_case "json escaping" `Quick test_json_escaping ] );
    ]
