(** ASCII run diagrams (Figure 1 and the §4 figures' run sketches).

    Renders per-process timelines with labelled operation intervals,
    scaled to a fixed character width.  Used by the bench to regenerate
    the figures from actual runs of the algorithm. *)

type interval = { proc : int; label : string; start : Rat.t; finish : Rat.t }

let interval ~proc ~label ~start ~finish = { proc; label; start; finish }

let of_operations ~label ops =
  List.map
    (fun (op : ('inv, 'resp) Sim.Trace.operation) ->
      {
        proc = op.proc;
        label = label op.inv;
        start = op.inv_time;
        finish = op.resp_time;
      })
    ops

let render ?(width = 100) ~n intervals =
  let buffer = Buffer.create 1024 in
  match intervals with
  | [] -> "(empty run)"
  | _ ->
      let t0 = Rat.min_list (List.map (fun i -> i.start) intervals) in
      let t1 = Rat.max_list (List.map (fun i -> i.finish) intervals) in
      let span = Rat.sub t1 t0 in
      let span = if Rat.is_zero span then Rat.one else span in
      let column t =
        let frac = Rat.div (Rat.sub t t0) span in
        let c = Rat.to_float frac *. float_of_int (width - 1) in
        Stdlib.max 0 (Stdlib.min (width - 1) (int_of_float c))
      in
      for proc = 0 to n - 1 do
        let line = Bytes.make width '.' in
        let labels = ref [] in
        List.iter
          (fun i ->
            if i.proc = proc then begin
              let a = column i.start and b = column i.finish in
              let b = Stdlib.max b (a + 1) in
              Bytes.set line a '[';
              if b < width then Bytes.set line b ']';
              for c = a + 1 to Stdlib.min (b - 1) (width - 1) do
                Bytes.set line c '='
              done;
              (* Inscribe the label inside the interval if it fits. *)
              let label = i.label in
              let avail = b - a - 1 in
              if String.length label <= avail then
                Bytes.blit_string label 0 line (a + 1) (String.length label)
              else labels := (a, label) :: !labels
            end)
          intervals;
        Buffer.add_string buffer (Printf.sprintf "p%-2d |" proc);
        Buffer.add_bytes buffer line;
        Buffer.add_char buffer '\n';
        (* Overflowing labels on a separate annotation line. *)
        List.iter
          (fun (a, label) ->
            Buffer.add_string buffer
              (Printf.sprintf "    |%s^ %s\n" (String.make a ' ') label))
          (List.rev !labels)
      done;
      let time_line =
        Printf.sprintf "    t in [%s, %s]" (Rat.to_string t0)
          (Rat.to_string t1)
      in
      Buffer.add_string buffer time_line;
      Buffer.contents buffer
