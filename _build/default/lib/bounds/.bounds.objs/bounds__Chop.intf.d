lib/bounds/chop.mli: Rat Sim
