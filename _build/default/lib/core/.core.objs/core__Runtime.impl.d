lib/core/runtime.ml: Array Centralized Format Lin List Metrics Option Printf Random Rat Sim Spec Tob Workload Wtlw
