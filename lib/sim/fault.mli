(** Fault-injection plans for the simulator.

    The paper's model (§2.2) assumes reliable channels with delays in
    [[d - u, d]] and clock skew at most [eps].  A {!plan} deliberately
    breaks those assumptions in a seed-deterministic way, so that the
    rest of the stack can demonstrate {e graceful degradation}: every
    injected fault is recorded as a {!Trace.event}, the trace's
    admissibility monitor or the linearizability checker flags the
    damage, and the reliable-channel layer ([Core.Reliable]) restores
    linearizability under an inflated model.

    A plan is a pure description — a seed plus a list of primitive
    {!spec}s — and is composable by concatenation ({!compose}).  The
    engine {!instantiate}s it into a stateful {!injector} per run, so
    the same plan replayed with the same seed injects the identical
    faults. *)

(** One primitive fault source.  Message faults apply per engine-level
    transmission (retransmissions of the reliable layer are separate
    transmissions and roll independently). *)
type spec =
  | Drop of { p : float; edges : edges }
      (** lose the message with probability [p] *)
  | Duplicate of { p : float; edges : edges }
      (** deliver an extra copy (same delay) with probability [p] *)
  | Spike of { p : float; edges : edges; margin : Rat.t; below : bool }
      (** with probability [p] shift the sampled delay by [margin]:
          [delay + margin] (or [max 0 (delay - margin)] when [below]).
          With [margin > u] an upward spike is guaranteed to leave the
          model's envelope [[d - u, d]] *)
  | Crash of { proc : int; at : Rat.t }
      (** crash-stop: the process handles no event at real time >= [at] *)
  | Skew of { proc : int; offset : Rat.t }
      (** perturb the process's clock by [offset] on top of its
          engine offset, bypassing the model's skew validation *)

and edges = All | Edges of (int * int) list  (** (src, dst) pairs *)

type plan = { seed : int; specs : spec list }

val none : plan
(** The empty plan: injects nothing. *)

val is_none : plan -> bool

val plan : ?seed:int -> spec list -> plan
(** Build a plan; [seed] defaults to [0]. *)

val compose : plan -> plan -> plan
(** Specs of both plans apply (left first); seeds are mixed
    deterministically. *)

val drops : ?edges:edges -> float -> spec
val duplicates : ?edges:edges -> float -> spec
val spikes : ?edges:edges -> ?below:bool -> margin:Rat.t -> float -> spec
val crash : proc:int -> at:Rat.t -> spec
val skew : proc:int -> offset:Rat.t -> spec

(** An injected fault, as recorded in the trace ({!Trace.Fault}) and
    counted by the trace's O(1) fault counters. *)
type kind =
  | Dropped of { src : int; dst : int; seq : int }
  | Duplicated of { src : int; dst : int; seq : int }
  | Spiked of { src : int; dst : int; seq : int; delay : Rat.t }
  | Crashed of { proc : int; at : Rat.t }
  | Skewed of { proc : int; offset : Rat.t }

val pp_kind : Format.formatter -> kind -> unit

(** {1 Static plan queries} *)

val crash_time : plan -> proc:int -> Rat.t option
(** Earliest crash scheduled for [proc], if any. *)

val skew_offsets : plan -> n:int -> Rat.t array
(** Summed clock perturbation per process. *)

val extra_skew : plan -> Rat.t
(** Worst additional pairwise skew the plan can introduce: the spread
    of {!skew_offsets} including the unperturbed processes' [0].  Used
    to inflate a model's [eps] for recovery runs. *)

val max_spike : plan -> Rat.t
(** Largest upward spike margin in the plan ([0] if none): spiked
    delays never exceed the sampled delay plus [max_spike]. *)

val describe : plan -> string
(** One-line human summary, e.g. ["seed=7 drop(0.25,all) crash(p1@36)"]. *)

(** {1 Instantiation (used by the engine)} *)

type injector

val instantiate : plan -> model:Model.t -> injector
(** Fresh fault state (RNG seeded from the plan's seed) for one run. *)

val on_send :
  injector ->
  src:int ->
  dst:int ->
  seq:int ->
  delay:Rat.t ->
  Rat.t list * kind list
(** Decide the fate of one transmission whose fault-free delay is
    [delay]: the list of delays to actually deliver (empty = dropped,
    two entries = duplicated, altered = spiked) and the fault records
    to emit.  Consumes RNG state; deterministic in engine send order. *)

val injector_crash_time : injector -> proc:int -> Rat.t option
val injector_skew : injector -> proc:int -> Rat.t
