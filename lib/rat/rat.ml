type t = { num : int; den : int }

exception Overflow

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Checked machine arithmetic: the cross-multiplications in [add],
   [mul] and friends silently wrap on adversarial numerators and
   denominators; detect it and raise {!Overflow} instead of returning a
   wrong rational. *)
let checked_mul a b =
  if a = 0 || b = 0 then 0
  else if (a = min_int && b = -1) || (a = -1 && b = min_int) then
    raise Overflow
  else
    let r = a * b in
    if r / a <> b then raise Overflow else r

let checked_add a b =
  let r = a + b in
  if a >= 0 = (b >= 0) && r >= 0 <> (a >= 0) then raise Overflow else r

let checked_sub a b =
  let r = a - b in
  if a >= 0 <> (b >= 0) && r >= 0 <> (a >= 0) then raise Overflow else r

let make num den =
  if den = 0 then raise Division_by_zero
  else begin
    let num, den = if den < 0 then (-num, -den) else (num, den) in
    let g = gcd (Stdlib.abs num) den in
    if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }
  end

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let num t = t.num
let den t = t.den

(* Reduce before multiplying: a/b * c/d with g1 = gcd(a, d) and
   g2 = gcd(c, b) keeps the intermediates as small as the final
   normalized result, so [Overflow] fires only when the result itself
   cannot be represented. *)
let mul a b =
  let g1 = gcd (Stdlib.abs a.num) b.den in
  let g2 = gcd (Stdlib.abs b.num) a.den in
  let g1 = if g1 = 0 then 1 else g1 in
  let g2 = if g2 = 0 then 1 else g2 in
  make
    (checked_mul (a.num / g1) (b.num / g2))
    (checked_mul (a.den / g2) (b.den / g1))

(* a/b + c/d over the reduced common denominator lcm(b, d). *)
let add a b =
  let g = gcd a.den b.den in
  let bd = b.den / g in
  make
    (checked_add (checked_mul a.num bd) (checked_mul b.num (a.den / g)))
    (checked_mul a.den bd)

let sub a b =
  let g = gcd a.den b.den in
  let bd = b.den / g in
  make
    (checked_sub (checked_mul a.num bd) (checked_mul b.num (a.den / g)))
    (checked_mul a.den bd)

let div a b =
  if b.num = 0 then raise Division_by_zero
  else
    let g1 = gcd (Stdlib.abs a.num) (Stdlib.abs b.num) in
    let g2 = gcd b.den a.den in
    let g1 = if g1 = 0 then 1 else g1 in
    let num = checked_mul (a.num / g1) (b.den / g2) in
    let den = checked_mul (a.den / g2) (b.num / g1) in
    make num den

let neg a = { a with num = -a.num }
let abs a = { a with num = Stdlib.abs a.num }

let mul_int a k =
  let g = gcd (Stdlib.abs k) a.den in
  let g = if g = 0 then 1 else g in
  make (checked_mul a.num (k / g)) (a.den / g)

let div_int a k =
  if k = 0 then raise Division_by_zero
  else
    let g = gcd (Stdlib.abs a.num) (Stdlib.abs k) in
    let g = if g = 0 then 1 else g in
    make (a.num / g) (checked_mul a.den (k / g))

(* Exact comparison of two non-negative fractions with positive
   denominators, overflow-free: compare integer parts, then recurse on
   the flipped remainders (continued-fraction descent; the operands
   strictly shrink). *)
let rec compare_pos n1 d1 n2 d2 =
  let q1 = n1 / d1 and q2 = n2 / d2 in
  if q1 <> q2 then Stdlib.compare q1 q2
  else
    let r1 = n1 mod d1 and r2 = n2 mod d2 in
    if r1 = 0 && r2 = 0 then 0
    else if r1 = 0 then -1
    else if r2 = 0 then 1
    else compare_pos d2 r2 d1 r1

(* Cross-multiplication keeps comparison exact; denominators are
   positive.  When the cross products would overflow, fall back to the
   exact continued-fraction descent instead of comparing wrapped
   integers. *)
let compare a b =
  match Stdlib.compare (checked_mul a.num b.den) (checked_mul b.num a.den) with
  | c -> c
  | exception Overflow ->
      let sa = Stdlib.compare a.num 0 and sb = Stdlib.compare b.num 0 in
      if sa <> sb then Stdlib.compare sa sb
      else if sa > 0 then compare_pos a.num a.den b.num b.den
      else compare_pos (-b.num) b.den (-a.num) a.den
let equal a b = compare a b = 0
let lt a b = compare a b < 0
let le a b = compare a b <= 0
let gt a b = compare a b > 0
let ge a b = compare a b >= 0
let min a b = if le a b then a else b
let max a b = if ge a b then a else b
let sign a = Stdlib.compare a.num 0
let is_zero a = a.num = 0

let clamp ~lo ~hi x =
  if gt lo hi then invalid_arg "Rat.clamp: lo > hi"
  else min hi (max lo x)

let in_range ~lo ~hi x = le lo x && le x hi
let sum l = List.fold_left add zero l

let min_list = function
  | [] -> invalid_arg "Rat.min_list: empty list"
  | x :: rest -> List.fold_left min x rest

let max_list = function
  | [] -> invalid_arg "Rat.max_list: empty list"
  | x :: rest -> List.fold_left max x rest

let to_float a = float_of_int a.num /. float_of_int a.den

let to_string a =
  if a.den = 1 then string_of_int a.num
  else Printf.sprintf "%d/%d" a.num a.den

let pp ppf a = Format.pp_print_string ppf (to_string a)
let hash a = (a.num * 31) lxor a.den

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( <> ) a b = not (equal a b)
  let ( < ) = lt
  let ( <= ) = le
  let ( > ) = gt
  let ( >= ) = ge
end
