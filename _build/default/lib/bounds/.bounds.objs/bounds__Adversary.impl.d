lib/bounds/adversary.ml: Array Chop Format Fun List Printf Rat Shifting Sim Theorems
