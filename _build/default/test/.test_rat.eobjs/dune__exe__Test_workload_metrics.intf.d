test/test_workload_metrics.mli:
