(** Declarative scenarios: runs as data.

    A {!t} composes everything that defines a run — data type, model
    point, delay schedule, fault plan, checker, algorithm variant
    (including the ablation knobs), workload, budgets — with what the
    run is {e expected} to do (certify / violate-with-witness /
    named-diagnostic) and a temporal predicate over the observed trace.
    Around it:

    - a stable textual encoding ({!to_sexp}/{!of_sexp}; canonical, so
      [of_sexp (to_sexp s) = Ok s] and equal scenarios render
      byte-identically);
    - seed-deterministic random generation over the ten bundled types
      ({!gen}: same seed, byte-identical scenario);
    - an executor lowering scenarios onto the existing
      [Runtime.Config] / [Sweep] / [Shard] machinery ({!run},
      {!of_sweep_cell}, {!to_shard_config});
    - a greedy deterministic counterexample shrinker ({!shrink}: drop
      invocations, move delay matrices toward the uniform point, drop
      fault specs, shrink seeds — to a fixpoint);
    - a bound probe feeding shrunk delay matrices into
      [Bounds.Adversary] ({!Probe}). *)

include module type of Types

module Sexp = Sexp
module Exec = Exec
module Shrink = Shrink
module Generate = Generate
module Probe = Probe
module Builtin = Builtin

(** {1 Codec} *)

val to_sexp : t -> Sexp.t
val of_sexp : Sexp.t -> (t, string) result

val to_string : t -> string
(** Canonical rendering ({!Sexp.to_string_hum} of {!to_sexp}): one
    field per line, byte-stable for equal scenarios. *)

val of_string : string -> (t, string) result
val save : string -> t -> unit
val load : string -> (t, string) result

(** {1 Running, generating, shrinking} *)

val run : t -> Exec.outcome
val gen : seed:int -> t
val shrink : ?max_attempts:int -> t -> (Shrink.outcome, string) result

(** {1 Projections} *)

val of_sweep_cell : Sweep.grid -> Sweep.cell -> t
(** A sweep cell as a scenario — the exact lowering [Sweep.eval]
    performs, so running the projection reproduces the cell's run. *)

val to_shard_config : shards:int -> t -> (Shard.Config.t, string) result
(** A generated-workload scenario as a [Shard] campaign; explicit and
    closed-loop workloads (and ablation knobs) do not shard. *)
