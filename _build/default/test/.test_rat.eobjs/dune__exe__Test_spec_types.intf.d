test/test_spec_types.mli:
