type ('msg, 'inv, 'resp) event =
  | Invoke of { time : Rat.t; proc : int; inv : 'inv }
  | Respond of { time : Rat.t; proc : int; inv : 'inv; resp : 'resp }
  | Send of {
      time : Rat.t;
      src : int;
      dst : int;
      delay : Rat.t;
      msg : 'msg;
    }
  | Deliver of { time : Rat.t; src : int; dst : int; msg : 'msg }
  | Timer_set of { time : Rat.t; proc : int; id : int; expiry : Rat.t }
  | Timer_fire of { time : Rat.t; proc : int; id : int }
  | Timer_cancel of { time : Rat.t; proc : int; id : int }

type ('msg, 'inv, 'resp) t = {
  mutable rev_events : ('msg, 'inv, 'resp) event list;
  mutable count : int;
}

type ('inv, 'resp) operation = {
  proc : int;
  inv : 'inv;
  resp : 'resp;
  inv_time : Rat.t;
  resp_time : Rat.t;
}

let create () = { rev_events = []; count = 0 }

let of_events events =
  { rev_events = List.rev events; count = List.length events }

let record t event =
  t.rev_events <- event :: t.rev_events;
  t.count <- t.count + 1

let events t = List.rev t.rev_events

let event_time = function
  | Invoke { time; _ }
  | Respond { time; _ }
  | Send { time; _ }
  | Deliver { time; _ }
  | Timer_set { time; _ }
  | Timer_fire { time; _ }
  | Timer_cancel { time; _ } -> time

let last_time t =
  match t.rev_events with [] -> Rat.zero | event :: _ -> event_time event

(* Pair each response with the pending invocation at the same process.
   The at-most-one-pending-operation constraint (§2.2) makes the pairing
   unambiguous. *)
let fold_operations t =
  let pending : (int, Rat.t * 'inv) Hashtbl.t = Hashtbl.create 16 in
  let finished = ref [] in
  let step = function
    | Invoke { time; proc; inv } ->
        if Hashtbl.mem pending proc then
          invalid_arg "Trace.operations: overlapping invocations at a process";
        Hashtbl.replace pending proc (time, inv)
    | Respond { time; proc; resp; _ } -> (
        match Hashtbl.find_opt pending proc with
        | None -> invalid_arg "Trace.operations: response without invocation"
        | Some (inv_time, inv) ->
            Hashtbl.remove pending proc;
            finished :=
              { proc; inv; resp; inv_time; resp_time = time } :: !finished)
    | Send _ | Deliver _ | Timer_set _ | Timer_fire _ | Timer_cancel _ -> ()
  in
  List.iter step (events t);
  (List.rev !finished, pending)

let operations t =
  let finished, _pending = fold_operations t in
  List.stable_sort (fun a b -> Rat.compare a.inv_time b.inv_time) finished

let pending_invocations t =
  let _finished, pending = fold_operations t in
  Hashtbl.fold (fun proc (_, inv) acc -> (proc, inv) :: acc) pending []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

let message_delays t =
  List.filter_map
    (function
      | Send { src; dst; delay; _ } -> Some (src, dst, delay)
      | Invoke _ | Respond _ | Deliver _ | Timer_set _ | Timer_fire _
      | Timer_cancel _ -> None)
    (events t)

let delays_admissible model t =
  List.for_all
    (fun (_, _, delay) -> Model.delay_valid model delay)
    (message_delays t)

let operation_count t =
  let finished, _ = fold_operations t in
  List.length finished

let pp_summary ppf t =
  let sends =
    List.length
      (List.filter (function Send _ -> true | _ -> false) (events t))
  in
  Format.fprintf ppf "trace: %d events, %d operations, %d messages, last=%a"
    t.count (operation_count t) sends Rat.pp (last_time t)
