(** The paper's bound formulas, as functions of the model parameters.

    Lower bounds (Theorems 2-5) hold for {e any} linearizable
    implementation in the partially synchronous model; upper bounds
    (Lemma 4) are achieved by Algorithm 1 with tradeoff parameter [X]
    in [[0, d - eps]]. *)

val slack_m : Sim.Model.t -> Rat.t
(** [m = min{eps, u, d/3}], the slack term of Theorems 4 and 5. *)

val thm2_pure_accessor : Sim.Model.t -> Rat.t
(** Theorem 2: every pure accessor takes at least [u/4] ([n >= 3]). *)

val thm3_last_sensitive : ?k:int -> Sim.Model.t -> Rat.t
(** Theorem 3: every last-sensitive operation takes at least
    [(1 - 1/k)u], [k] defaulting to [n].
    @raise Invalid_argument unless [2 <= k <= n]. *)

val thm4_pair_free : Sim.Model.t -> Rat.t
(** Theorem 4: every pair-free operation takes at least
    [d + min{eps, u, d/3}] ([n >= 2]). *)

val thm5_sum : Sim.Model.t -> Rat.t
(** Theorem 5: [|OP| + |AOP|] is at least [d + min{eps, u, d/3}] for a
    transposable OP and pure accessor AOP satisfying the discriminator
    hypotheses ([n >= 3]). *)

(** {1 Upper bounds (Lemma 4, Algorithm 1)} *)

val ub_pure_accessor_paper : Sim.Model.t -> x:Rat.t -> Rat.t
(** The paper's claimed [d - X] — unsound as published (see
    EXPERIMENTS.md §Finding); kept for comparison columns.
    @raise Invalid_argument if [x] is outside [[0, d - eps]]. *)

val ub_pure_accessor : Sim.Model.t -> x:Rat.t -> Rat.t
(** Achieved by the repaired algorithm: [d - X + eps]. *)

val ub_pure_mutator : Sim.Model.t -> x:Rat.t -> Rat.t
(** [X + eps]. *)

val ub_mixed : Sim.Model.t -> Rat.t
(** [d + eps]. *)

val ub_centralized : Sim.Model.t -> Rat.t
(** Folklore baseline: [2d] per operation. *)

val ub_tob : Sim.Model.t -> Rat.t
(** Folklore baseline: [d + eps] per operation. *)

(** {1 Prior bounds quoted in Tables 1-4} *)

val prior_read : Sim.Model.t -> Rat.t
(** Attiya-Welch: [u/4] for reads. *)

val prior_half_u : Sim.Model.t -> Rat.t
(** Attiya-Welch / Kosa: [u/2] for write, push, enqueue, insert, delete. *)

val prior_d : Sim.Model.t -> Rat.t
(** Kosa: [d] for RMW, dequeue, pop. *)

val prior_sum_d : Sim.Model.t -> Rat.t
(** Lipton-Sandberg / Kosa: [d] for interfering operation pairs. *)

(** {1 Tightness facts (paper §5, §6.1)} *)

val mutator_bound_tight : Sim.Model.t -> bool
(** With [eps = (1 - 1/n)u], Theorem 3's bound matches [X + eps] at
    [X = 0]. *)

val pair_free_bound_tight : Sim.Model.t -> bool
(** With [eps <= min{u, d/3}], Theorem 4's bound matches [d + eps]. *)
