examples/auction.mli:
