lib/bounds/stress.ml: Adversary Array Core Lin List Rat Shifting Sim Spec
