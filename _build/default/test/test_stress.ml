(* Shift-stress tests: the proofs' adversarial scenarios applied to
   Algorithm 1.  The algorithm meets the bounds, so whenever a shifted
   run remains admissible it must remain linearizable. *)

let rat = Rat.make
let model = Sim.Model.make_optimal_eps ~n:4 ~d:(rat 12 1) ~u:(rat 4 1)
let x_param = rat 2 1

module Q = Spec.Fifo_queue
module Reg = Spec.Register
module QStress = Bounds.Stress.Make (Q)
module RegStress = Bounds.Stress.Make (Reg)
module RmwStress = Bounds.Stress.Make (Spec.Rmw_register)
module StackStress = Bounds.Stress.Make (Spec.Stack_type)

let assert_outcome label (o : QStress.outcome) =
  Alcotest.(check bool) (label ^ ": base run linearizable") true
    o.base_linearizable;
  Alcotest.(check bool)
    (label ^ ": shifted run linearizable when admissible")
    true
    ((not o.shifted_admissible) || o.shifted_linearizable)

let assert_outcome_reg label (o : RegStress.outcome) =
  Alcotest.(check bool) (label ^ ": base run linearizable") true
    o.base_linearizable;
  Alcotest.(check bool)
    (label ^ ": shifted run linearizable when admissible")
    true
    ((not o.shifted_admissible) || o.shifted_linearizable)

let test_thm2_scenario_queue () =
  let outcome =
    QStress.theorem2 ~model ~x_param
      ~rho:[ Q.Enqueue 1; Q.Enqueue 2 ]
      ~aop:Q.Peek ~op:Q.Dequeue ()
  in
  Alcotest.(check int) "all operations completed" 9 outcome.operations;
  assert_outcome "thm2/queue" outcome

let test_thm2_scenario_register () =
  let outcome =
    RegStress.theorem2 ~model ~x_param ~rho:[ Reg.Write 7 ] ~aop:Reg.Read
      ~op:(Reg.Write 9) ()
  in
  assert_outcome_reg "thm2/register" outcome

let test_thm3_scenario_all_z () =
  (* k = 4 concurrent enqueues, one per process, for every possible
     last-linearized process z. *)
  List.iter
    (fun z ->
      let outcome =
        QStress.theorem3 ~model ~x_param ~k:4 ~z ~rho:[ Q.Enqueue 0 ]
          ~instances:[ Q.Enqueue 1; Q.Enqueue 2; Q.Enqueue 3; Q.Enqueue 4 ]
          ()
      in
      Alcotest.(check int)
        (Printf.sprintf "z=%d ops" z)
        5 outcome.operations;
      assert_outcome (Printf.sprintf "thm3/z=%d" z) outcome)
    [ 0; 1; 2; 3 ]

let test_thm3_scenario_register_writes () =
  let module RS = RegStress in
  List.iter
    (fun z ->
      let outcome =
        RS.theorem3 ~model ~x_param ~k:3 ~z ~rho:[]
          ~instances:[ Reg.Write 1; Reg.Write 2; Reg.Write 3 ]
          ()
      in
      assert_outcome_reg (Printf.sprintf "thm3/writes z=%d" z) outcome)
    [ 0; 1; 2 ]

let test_thm4_scenario_dequeue () =
  let outcome =
    QStress.theorem4 ~model ~x_param ~rho:[ Q.Enqueue 1 ] ~op0:Q.Dequeue
      ~op1:Q.Dequeue ()
  in
  assert_outcome "thm4/dequeue" outcome

let test_thm4_scenario_rmw () =
  let module M = RmwStress in
  let outcome =
    M.theorem4 ~model ~x_param ~rho:[]
      ~op0:(Spec.Rmw_register.Rmw (Spec.Rmw_register.Fetch_and_add 1))
      ~op1:(Spec.Rmw_register.Rmw (Spec.Rmw_register.Fetch_and_add 2))
      ()
  in
  Alcotest.(check bool) "thm4/rmw base linearizable" true
    outcome.base_linearizable;
  Alcotest.(check bool) "thm4/rmw shifted ok" true
    ((not outcome.shifted_admissible) || outcome.shifted_linearizable)

let test_thm4_scenario_pop () =
  let module M = StackStress in
  let outcome =
    M.theorem4 ~model ~x_param
      ~rho:[ Spec.Stack_type.Push 5 ]
      ~op0:Spec.Stack_type.Pop ~op1:Spec.Stack_type.Pop ()
  in
  Alcotest.(check bool) "thm4/pop base linearizable" true
    outcome.base_linearizable;
  Alcotest.(check bool) "thm4/pop shifted ok" true
    ((not outcome.shifted_admissible) || outcome.shifted_linearizable)

let test_thm5_scenario_enqueue_peek () =
  let outcome =
    QStress.theorem5 ~model ~x_param ~rho:[] ~op0:(Q.Enqueue 1)
      ~op1:(Q.Enqueue 2) ~aop0:Q.Peek ~aop1:Q.Peek ~aop2:Q.Peek ()
  in
  Alcotest.(check int) "thm5 ops" 5 outcome.operations;
  assert_outcome "thm5/enqueue+peek" outcome

(* Sweep over X to confirm the scenarios hold across the whole tradeoff
   range (X governs how close the accessors run to the bound). *)
let test_x_sweep () =
  let x_max = Rat.sub model.d model.eps in
  List.iter
    (fun frac ->
      let x = Rat.mul x_max (rat frac 4) in
      let outcome =
        QStress.theorem3 ~model ~x_param:x ~k:3 ~z:1 ~rho:[]
          ~instances:[ Q.Enqueue 1; Q.Enqueue 2; Q.Enqueue 3 ]
          ()
      in
      assert_outcome (Printf.sprintf "x sweep %d/4" frac) outcome)
    [ 0; 1; 2; 3; 4 ]

(* Property: random z / k / seeds over the theorem-3 scenario. *)
let prop_thm3_random =
  QCheck.Test.make ~name:"thm3 scenario over random k, z" ~count:30
    QCheck.(pair (int_range 2 4) (int_range 0 3))
    (fun (k, z_raw) ->
      let z = z_raw mod k in
      let instances = List.init k (fun i -> Q.Enqueue (i + 1)) in
      let outcome =
        QStress.theorem3 ~model ~x_param ~k ~z ~rho:[] ~instances ()
      in
      outcome.base_linearizable
      && ((not outcome.shifted_admissible) || outcome.shifted_linearizable))

let () =
  Alcotest.run "stress"
    [
      ( "scenarios",
        [
          Alcotest.test_case "thm2 queue" `Quick test_thm2_scenario_queue;
          Alcotest.test_case "thm2 register" `Quick test_thm2_scenario_register;
          Alcotest.test_case "thm3 all z" `Quick test_thm3_scenario_all_z;
          Alcotest.test_case "thm3 register writes" `Quick
            test_thm3_scenario_register_writes;
          Alcotest.test_case "thm4 dequeue" `Quick test_thm4_scenario_dequeue;
          Alcotest.test_case "thm4 rmw" `Quick test_thm4_scenario_rmw;
          Alcotest.test_case "thm4 pop" `Quick test_thm4_scenario_pop;
          Alcotest.test_case "thm5 enqueue+peek" `Quick
            test_thm5_scenario_enqueue_peek;
          Alcotest.test_case "x sweep" `Quick test_x_sweep;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_thm3_random ] );
    ]
