test/test_assumptions.ml: Alcotest Array Core List Printf Rat Sim Spec
