(** Shift-stress harness: the proofs' adversarial scenarios applied to
    {e our} algorithm.

    Theorems 2-5 derive contradictions for hypothetical algorithms that
    are faster than the bounds.  Algorithm 1 respects the bounds, so on
    it the very same constructions must produce {e no} contradiction:
    after shifting a run by the proof's vector, whenever the result is
    admissible it must still be linearizable (the views are unchanged,
    so each process still executes the same instances).  This harness
    runs a scenario, shifts the trace, checks admissibility of the
    shifted run, and re-checks linearizability of the shifted history —
    a strong end-to-end exercise of Theorem 1's view-preservation
    property on real traces. *)

module Make (T : Spec.Data_type.S) = struct
  module Algo = Core.Wtlw.Make (T)
  module Checker = Lin.Checker.Make (T)

  type outcome = {
    base_linearizable : bool;
    shifted_admissible : bool;
    shifted_linearizable : bool;
    operations : int;
  }

  (* Run the algorithm under pair-wise uniform delays [matrix] with the
     given invocation schedule, then shift by [x]. *)
  let run_and_shift ~(model : Sim.Model.t) ~x_param ~offsets ~matrix ~shift
      schedule =
    let cluster =
      Algo.create ~model ~x:x_param ~offsets ~delay:(Sim.Net.matrix matrix) ()
    in
    List.iter
      (fun { Core.Workload.proc; at; inv } ->
        Sim.Engine.schedule_invoke cluster.engine ~at ~proc inv)
      (Core.Workload.sort_schedule schedule);
    Sim.Engine.run cluster.engine;
    let trace = Sim.Engine.trace cluster.engine in
    let shifted = Shifting.shift_trace trace shift in
    let shifted_offsets = Shifting.shifted_offsets offsets shift in
    {
      base_linearizable = Checker.trace_linearizable trace;
      shifted_admissible =
        Sim.Trace.delays_admissible model shifted
        && Shifting.skew_admissible model shifted_offsets;
      shifted_linearizable = Checker.trace_linearizable shifted;
      operations = Sim.Trace.operation_count trace;
    }

  let ok outcome =
    outcome.base_linearizable
    && ((not outcome.shifted_admissible) || outcome.shifted_linearizable)

  (* Theorem 2 scenario: a context sequence at p0, then alternating
     accessor instances at p0/p1 bracketing a mutator instance at p2,
     under uniform delays d - u/2; shifted by (u/4, -u/4, 0, ...). *)
  let theorem2 ~(model : Sim.Model.t) ~x_param ~rho ~aop ~op () =
    let matrix = Adversary.Thm2.base_matrix model in
    let shift = Adversary.Thm2.shift_vector model ~case:`Even in
    let offsets = Array.make model.n Rat.zero in
    let aop_latency = Rat.add (Rat.sub model.d x_param) model.eps in
    let gap = Rat.add aop_latency (Rat.div_int model.u 4) in
    let rho_spacing = Rat.add (Rat.add model.d model.eps) Rat.one in
    let rho_schedule =
      List.mapi
        (fun k inv ->
          Core.Workload.entry ~proc:0 ~at:(Rat.mul_int rho_spacing k) inv)
        rho
    in
    let t =
      Rat.add (Rat.mul_int rho_spacing (List.length rho)) (Rat.div_int model.u 4)
    in
    (* Alternating accessors at p0 and p1; the mutator at p2 in the
       middle of the accessor train. *)
    let aops =
      List.init 6 (fun i ->
          Core.Workload.entry ~proc:(i mod 2)
            ~at:(Rat.add t (Rat.mul_int gap i))
            aop)
    in
    let op_entry =
      Core.Workload.entry ~proc:2
        ~at:(Rat.add t (Rat.mul_int gap 3))
        op
    in
    run_and_shift ~model ~x_param ~offsets ~matrix ~shift
      (op_entry :: (rho_schedule @ aops))

  (* Theorem 3 scenario: k concurrent instances of a last-sensitive
     mutator, one per process, under the skewed-ring delay matrix;
     shifted by the proof's vector for each possible z. *)
  let theorem3 ~(model : Sim.Model.t) ~x_param ~k ~z ~rho ~instances () =
    if List.length instances <> k then
      invalid_arg "Stress.theorem3: need exactly k instances";
    let matrix = Adversary.Thm3.base_matrix model ~k in
    let shift = Adversary.Thm3.shift_vector model ~k ~z in
    let offsets = Array.make model.n Rat.zero in
    let rho_spacing = Rat.add (Rat.add model.d model.eps) Rat.one in
    let rho_schedule =
      List.mapi
        (fun i inv ->
          Core.Workload.entry ~proc:0 ~at:(Rat.mul_int rho_spacing i) inv)
        rho
    in
    let t =
      Rat.add (Rat.mul_int rho_spacing (List.length rho)) (Rat.div_int model.u 2)
    in
    let concurrent =
      List.mapi
        (fun i inv -> Core.Workload.entry ~proc:i ~at:t inv)
        instances
    in
    run_and_shift ~model ~x_param ~offsets ~matrix ~shift
      (rho_schedule @ concurrent)

  (* Theorem 4 scenario: two concurrent instances of a pair-free
     operation at p0 and p1 under the D1 matrix; shifted by the step-3
     vector. *)
  let theorem4 ~(model : Sim.Model.t) ~x_param ~rho ~op0 ~op1 () =
    let matrix = Adversary.Thm4.d1_matrix model in
    let shift = Adversary.Thm4.step3_shift model in
    let offsets = Array.make model.n Rat.zero in
    let mm = Adversary.Thm4.m model in
    let rho_spacing = Rat.add (Rat.add model.d model.eps) Rat.one in
    let rho_schedule =
      List.mapi
        (fun i inv ->
          Core.Workload.entry ~proc:0 ~at:(Rat.mul_int rho_spacing i) inv)
        rho
    in
    let t = Rat.add (Rat.mul_int rho_spacing (List.length rho)) mm in
    run_and_shift ~model ~x_param ~offsets ~matrix ~shift
      (rho_schedule
      @ [
          Core.Workload.entry ~proc:0 ~at:t op0;
          Core.Workload.entry ~proc:1 ~at:(Rat.add t mm) op1;
        ])

  (* Theorem 5 scenario: concurrent op0/op1 then three accessors, under
     the D matrix of Figure 8; shifted by (0, m, 0, ...). *)
  let theorem5 ~(model : Sim.Model.t) ~x_param ~rho ~op0 ~op1 ~aop0 ~aop1
      ~aop2 () =
    let matrix = Adversary.Thm5.d_matrix model in
    let shift = Adversary.Thm5.shift model in
    let offsets = Array.make model.n Rat.zero in
    let mm = Adversary.Thm5.m model in
    let rho_spacing = Rat.add (Rat.add model.d model.eps) Rat.one in
    let rho_schedule =
      List.mapi
        (fun i inv ->
          Core.Workload.entry ~proc:0 ~at:(Rat.mul_int rho_spacing i) inv)
        rho
    in
    let t = Rat.add (Rat.mul_int rho_spacing (List.length rho)) mm in
    (* t_max: a safe upper bound on when both op0 and op1 finished. *)
    let t_max = Rat.add t (Rat.add model.d model.eps) in
    run_and_shift ~model ~x_param ~offsets ~matrix ~shift
      (rho_schedule
      @ [
          Core.Workload.entry ~proc:0 ~at:t op0;
          Core.Workload.entry ~proc:1 ~at:t op1;
          Core.Workload.entry ~proc:0 ~at:t_max aop0;
          Core.Workload.entry ~proc:1 ~at:t_max aop1;
          Core.Workload.entry ~proc:2 ~at:(Rat.add t_max mm) aop2;
        ])
end
