(** Executable classification of operations by the paper's algebraic
    properties (§2.1, §3.2, §4.2, §4.3).

    Every definition in the paper is of the form "there exist a context
    sequence rho and instances such that ..." (witness search) or "for
    all rho and instances ..." (bounded refutation search).  The
    checkers below run those searches over a {e universe}: a finite
    pool of context sequences plus the per-operation sample invocations
    declared by the data type.  Existential results ([true] = witness
    found) are sound; universal results are sound refutations when
    [false] and bounded verification when [true].

    The test suite uses these checkers to confirm that every concrete
    data type has exactly the classifications the paper's tables claim
    (Figure 11's containment diagram). *)

type op_report = {
  op : string;
  declared : Op_kind.t;
  discovered_mutator : bool;
  discovered_accessor : bool;
  transposable : bool;
  last_sensitive2 : bool;  (** witness with [k = 2] *)
  last_sensitive3 : bool;  (** witness with [k = 3] *)
  pair_free : bool;
  overwriter : bool;
}

let pp_op_report ppf r =
  let yn b = if b then "yes" else "no" in
  Format.fprintf ppf
    "%-12s declared=%-16s mutator=%-3s accessor=%-3s transposable=%-3s \
     last-sensitive(k=2)=%-3s (k=3)=%-3s pair-free=%-3s overwriter=%s"
    r.op
    (Op_kind.to_string r.declared)
    (yn r.discovered_mutator) (yn r.discovered_accessor) (yn r.transposable)
    (yn r.last_sensitive2) (yn r.last_sensitive3) (yn r.pair_free)
    (yn r.overwriter)

module Make (T : Data_type.S) = struct
  module Sem = Data_type.Semantics (T)

  type universe = { contexts : T.invocation list list }

  let all_samples () =
    List.concat_map (fun (op, _) -> T.sample_invocations op) T.operations

  (* Empty context, all length-<=2 sequences over a trimmed sample pool,
     plus random sequences: enough to exhibit the witnesses for every
     property of the bundled data types, and extensible via [extra] for
     handcrafted contexts. *)
  let default_universe ?(extra = []) ?(depth = 5) ?(count = 60)
      ?(seed = 0xC1A55) () =
    let take k l = List.filteri (fun i _ -> i < k) l in
    let pool =
      List.concat_map (fun (op, _) -> take 3 (T.sample_invocations op))
        T.operations
    in
    let len1 = List.map (fun i -> [ i ]) pool in
    let len2 =
      List.concat_map (fun i -> List.map (fun j -> [ i; j ]) pool) pool
    in
    let rng = Random.State.make [| seed |] in
    let random_context _ =
      let len = 1 + Random.State.int rng depth in
      List.init len (fun _ -> T.gen_invocation rng)
    in
    let randoms = List.init count random_context in
    { contexts = (([] :: len1) @ len2) @ randoms @ extra }

  (* Materialize a context: its reached state. Contexts built from
     invocation lists are always legal (state-based semantics). *)
  let context_states u = List.map (fun c -> snd (Sem.perform_seq c)) u.contexts

  (* Contexts paired with their reached states, for witness
     extraction. *)
  let contexts_with_states u =
    List.map (fun c -> (c, snd (Sem.perform_seq c))) u.contexts

  let response_in state inv = snd (T.apply state inv)
  let state_then state inv = fst (T.apply state inv)

  let exists_context u predicate = List.exists predicate (context_states u)
  let for_all_contexts u predicate = List.for_all predicate (context_states u)

  (* MOP is a mutator iff some instance changes the state detectably. *)
  let is_mutator u op =
    exists_context u (fun s0 ->
        List.exists
          (fun inv -> not (T.equal_state s0 (state_then s0 inv)))
          (T.sample_invocations op))

  (* AOP is an accessor iff some other instance [mid] changes the
     response of some AOP instance: then rho.aop and rho.mid are legal
     but rho.mid.aop is illegal. *)
  let is_accessor u op =
    exists_context u (fun s0 ->
        List.exists
          (fun aop_inv ->
            let before = response_in s0 aop_inv in
            List.exists
              (fun mid ->
                let after = response_in (state_then s0 mid) aop_inv in
                not (T.equal_response before after))
              (all_samples ()))
          (T.sample_invocations op))

  let discovered_kind u op =
    match (is_mutator u op, is_accessor u op) with
    | true, true -> Some Op_kind.Mixed
    | true, false -> Some Op_kind.Pure_mutator
    | false, true -> Some Op_kind.Pure_accessor
    | false, false -> None

  (* Distinct sample invocations of one operation. *)
  let distinct_pairs invs =
    List.concat_map
      (fun i1 ->
        List.filter_map
          (fun i2 ->
            if T.equal_invocation i1 i2 then None else Some (i1, i2))
          invs)
      invs

  (* Bounded universal check of transposability: no context and pair of
     distinct instances witnesses a violation. *)
  let is_transposable u op =
    let invs = T.sample_invocations op in
    for_all_contexts u (fun s0 ->
        List.for_all
          (fun (inv1, inv2) ->
            let r1 = response_in s0 inv1 and r2 = response_in s0 inv2 in
            let after1 = state_then s0 inv1 and after2 = state_then s0 inv2 in
            (* rho.op1.op2 legal iff op2's recorded response recurs. *)
            T.equal_response (response_in after1 inv2) r2
            && T.equal_response (response_in after2 inv1) r1)
          (distinct_pairs invs))

  let rec permutations = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            let rest = List.filter (fun y -> y != x) l in
            List.map (fun p -> x :: p) (permutations rest))
          l

  (* All size-k subsets of [l]. *)
  let rec choose k l =
    if k = 0 then [ [] ]
    else
      match l with
      | [] -> []
      | x :: rest ->
          List.map (fun c -> x :: c) (choose (k - 1) rest) @ choose k rest

  (* Replay instances (invocation plus recorded response) from a state;
     [None] if some response disagrees (the permutation is illegal). *)
  let replay_instances s0 instances =
    List.fold_left
      (fun acc (inv, resp) ->
        match acc with
        | None -> None
        | Some s ->
            if T.equal_response (response_in s inv) resp then
              Some (state_then s inv)
            else None)
      (Some s0) instances

  (* Witness search for last-sensitivity with a given [k]: some context
     and k distinct instances such that every permutation is legal and
     permutations with different last elements reach different states. *)
  let is_last_sensitive u ~k op =
    let invs = T.sample_invocations op in
    let distinct_sets =
      choose k invs
      |> List.filter (fun set ->
             List.for_all
               (fun (a, b) -> not (T.equal_invocation a b))
               (List.concat_map
                  (fun a ->
                    List.filter_map
                      (fun b -> if a == b then None else Some (a, b))
                      set)
                  set))
    in
    exists_context u (fun s0 ->
        List.exists
          (fun set ->
            let instances =
              List.map (fun inv -> (inv, response_in s0 inv)) set
            in
            let outcomes =
              List.map
                (fun perm ->
                  match replay_instances s0 perm with
                  | None -> None
                  | Some final -> Some (fst (List.nth perm (k - 1)), final))
                (permutations instances)
            in
            if List.exists Option.is_none outcomes then false
            else
              let outcomes = List.filter_map Fun.id outcomes in
              List.for_all
                (fun (last1, state1) ->
                  List.for_all
                    (fun (last2, state2) ->
                      T.equal_invocation last1 last2
                      || not (T.equal_state state1 state2))
                    outcomes)
                outcomes)
          distinct_sets)

  (* Witness search for pair-freedom: instances op1, op2 (possibly
     equal) legal after rho but illegal in either sequential order. *)
  let is_pair_free u op =
    let invs = T.sample_invocations op in
    exists_context u (fun s0 ->
        List.exists
          (fun inv1 ->
            List.exists
              (fun inv2 ->
                let r1 = response_in s0 inv1 and r2 = response_in s0 inv2 in
                let after1 = state_then s0 inv1
                and after2 = state_then s0 inv2 in
                (not (T.equal_response (response_in after1 inv2) r2))
                && not (T.equal_response (response_in after2 inv1) r1))
              invs)
          invs)

  (* Bounded universal check: every legal occurrence of the same MOP
     instance before and after an interposed instance leaves equivalent
     states. *)
  let is_overwriter u op =
    is_mutator u op
    && for_all_contexts u (fun s0 ->
           List.for_all
             (fun mop_inv ->
               List.for_all
                 (fun mid ->
                   let direct_resp = response_in s0 mop_inv in
                   let direct_state = state_then s0 mop_inv in
                   let s_mid = state_then s0 mid in
                   let via_resp = response_in s_mid mop_inv in
                   let via_state = state_then s_mid mop_inv in
                   (not (T.equal_response direct_resp via_resp))
                   || T.equal_state direct_state via_state)
                 (all_samples ()))
             (T.sample_invocations op))

  (* The interference relation of §6.1 (generalizing Lipton-Sandberg):
     OP1 interferes with OP2 if some instance of OP1 changes the
     response of some instance of OP2 — then |OP1| + |OP2| >= d for any
     linearizable implementation (the accessor must hear about the
     mutation). *)
  let interferes u ~op1 ~op2 =
    exists_context u (fun s0 ->
        List.exists
          (fun inv1 ->
            List.exists
              (fun inv2 ->
                let direct = response_in s0 inv2 in
                let via = response_in (state_then s0 inv1) inv2 in
                not (T.equal_response direct via))
              (T.sample_invocations op2))
          (T.sample_invocations op1))

  (* A discriminator in AOP for two (states of) legal sequences: one
     argument whose response differs between them (§4.3). *)
  let discriminator_exists ~aop s1 s2 =
    List.exists
      (fun inv ->
        not (T.equal_response (response_in s1 inv) (response_in s2 inv)))
      (T.sample_invocations aop)

  (* Theorem 5's hypotheses for (OP, AOP): OP transposable, AOP a pure
     accessor, and some context with op0, op1 admitting discriminators
     for (rho.op0 | rho.op1.op0), (rho.op1 | rho.op0.op1) and
     (rho.op0.op1 | rho.op1). *)
  let thm5_hypotheses u ~op ~aop =
    is_transposable u op
    && discovered_kind u aop = Some Op_kind.Pure_accessor
    && exists_context u (fun s0 ->
           List.exists
             (fun (inv0, inv1) ->
               let r0 = response_in s0 inv0 and r1 = response_in s0 inv1 in
               let s_op0 = state_then s0 inv0 in
               let s_op1 = state_then s0 inv1 in
               (* both two-step sequences must be legal *)
               T.equal_response (response_in s_op1 inv0) r0
               && T.equal_response (response_in s_op0 inv1) r1
               &&
               let s_op1_op0 = state_then s_op1 inv0 in
               let s_op0_op1 = state_then s_op0 inv1 in
               discriminator_exists ~aop s_op0 s_op1_op0
               && discriminator_exists ~aop s_op1 s_op0_op1
               && discriminator_exists ~aop s_op0_op1 s_op1)
             (distinct_pairs (T.sample_invocations op)))

  (* Witness extraction: the searches above, but returning the context
     and instances found, so lower-bound stress scenarios can be
     auto-derived for any data type (see Bounds.Stress). *)

  (* A context and instance behind a positive [is_mutator] answer. *)
  let find_mutator_witness u op =
    List.find_map
      (fun (context, s0) ->
        List.find_map
          (fun inv ->
            if not (T.equal_state s0 (state_then s0 inv)) then
              Some (context, inv)
            else None)
          (T.sample_invocations op))
      (contexts_with_states u)

  (* A context, accessor instance and interposed instance behind a
     positive [is_accessor] answer. *)
  let find_accessor_witness u op =
    List.find_map
      (fun (context, s0) ->
        List.find_map
          (fun aop_inv ->
            let before = response_in s0 aop_inv in
            List.find_map
              (fun mid ->
                let after = response_in (state_then s0 mid) aop_inv in
                if not (T.equal_response before after) then
                  Some (context, aop_inv, mid)
                else None)
              (all_samples ()))
          (T.sample_invocations op))
      (contexts_with_states u)

  (* A context rho and k distinct instances witnessing
     last-sensitivity (Theorem 3's hypothesis). *)
  let find_last_sensitive_witness u ~k op =
    let invs = T.sample_invocations op in
    let distinct_sets =
      choose k invs
      |> List.filter (fun set ->
             List.for_all
               (fun (a, b) -> not (T.equal_invocation a b))
               (List.concat_map
                  (fun a ->
                    List.filter_map
                      (fun b -> if a == b then None else Some (a, b))
                      set)
                  set))
    in
    List.find_map
      (fun (context, s0) ->
        List.find_map
          (fun set ->
            let instances =
              List.map (fun inv -> (inv, response_in s0 inv)) set
            in
            let outcomes =
              List.map
                (fun perm ->
                  match replay_instances s0 perm with
                  | None -> None
                  | Some final -> Some (fst (List.nth perm (k - 1)), final))
                (permutations instances)
            in
            if List.exists Option.is_none outcomes then None
            else
              let outcomes = List.filter_map Fun.id outcomes in
              let distinct =
                List.for_all
                  (fun (last1, state1) ->
                    List.for_all
                      (fun (last2, state2) ->
                        T.equal_invocation last1 last2
                        || not (T.equal_state state1 state2))
                      outcomes)
                  outcomes
              in
              if distinct then Some (context, set) else None)
          distinct_sets)
      (contexts_with_states u)

  (* A context and two instances witnessing pair-freedom (Theorem 4's
     hypothesis). *)
  let find_pair_free_witness u op =
    let invs = T.sample_invocations op in
    List.find_map
      (fun (context, s0) ->
        List.find_map
          (fun inv1 ->
            List.find_map
              (fun inv2 ->
                let r1 = response_in s0 inv1 and r2 = response_in s0 inv2 in
                let after1 = state_then s0 inv1
                and after2 = state_then s0 inv2 in
                if
                  (not (T.equal_response (response_in after1 inv2) r2))
                  && not (T.equal_response (response_in after2 inv1) r1)
                then Some (context, inv1, inv2)
                else None)
              invs)
          invs)
      (contexts_with_states u)

  (* A context, two OP instances and discriminator arguments witnessing
     Theorem 5's hypotheses for (OP, AOP). *)
  let find_thm5_witness u ~op ~aop =
    if
      (not (is_transposable u op))
      || discovered_kind u aop <> Some Op_kind.Pure_accessor
    then None
    else
      let find_discriminator s1 s2 =
        List.find_opt
          (fun inv ->
            not (T.equal_response (response_in s1 inv) (response_in s2 inv)))
          (T.sample_invocations aop)
      in
      List.find_map
        (fun (context, s0) ->
          List.find_map
            (fun (inv0, inv1) ->
              let r0 = response_in s0 inv0 and r1 = response_in s0 inv1 in
              let s_op0 = state_then s0 inv0 in
              let s_op1 = state_then s0 inv1 in
              if
                T.equal_response (response_in s_op1 inv0) r0
                && T.equal_response (response_in s_op0 inv1) r1
              then
                let s_op1_op0 = state_then s_op1 inv0 in
                let s_op0_op1 = state_then s_op0 inv1 in
                match
                  ( find_discriminator s_op0 s_op1_op0,
                    find_discriminator s_op1 s_op0_op1,
                    find_discriminator s_op0_op1 s_op1 )
                with
                | Some a0, Some a1, Some a2 ->
                    Some (context, inv0, inv1, a0, a1, a2)
                | _ -> None
              else None)
            (distinct_pairs (T.sample_invocations op)))
        (contexts_with_states u)

  let report u =
    List.map
      (fun (op, declared) ->
        {
          op;
          declared;
          discovered_mutator = is_mutator u op;
          discovered_accessor = is_accessor u op;
          transposable = is_transposable u op;
          last_sensitive2 = is_last_sensitive u ~k:2 op;
          last_sensitive3 = is_last_sensitive u ~k:3 op;
          pair_free = is_pair_free u op;
          overwriter = is_overwriter u op;
        })
      T.operations
end
