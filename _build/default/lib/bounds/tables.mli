(** Tables 1-5 of the paper, regenerated from the implemented bound
    formulas.  Bounds carry both the symbolic formula printed in the
    paper and its value at the given model parameters. *)

type bound = {
  formula : string;  (** e.g. ["(1-1/n)u"] *)
  value : Rat.t;
  source : string;  (** e.g. ["Thm. 3"] *)
}

type row = {
  operation : string;
  prev_lb : bound option;
  new_lb : bound option;
  new_ub : bound;
}

type table = { title : string; rows : row list }

val rmw_register : Sim.Model.t -> x:Rat.t -> table
(** Table 1: read/write/read-modify-write registers. *)

val queue : Sim.Model.t -> x:Rat.t -> table
(** Table 2: FIFO queues. *)

val stack : Sim.Model.t -> x:Rat.t -> table
(** Table 3: stacks (push+peek has no Theorem 5 row — the paper's
    exception). *)

val tree : Sim.Model.t -> x:Rat.t -> table
(** Table 4: simple rooted trees. *)

val summary : Sim.Model.t -> x:Rat.t -> table
(** Table 5: bounds by operation class. *)

val all : Sim.Model.t -> x:Rat.t -> table list
(** All five, in paper order. *)

val row_consistent : row -> bool
(** New LB >= previous LB, and new LB <= new UB. *)

val pp_table : Format.formatter -> table -> unit
