(** Fixed domain pool over a bounded, indexed work queue.

    [map ~jobs ~fail_fast ~n ~init ~f] evaluates [f local i] for every
    [i] in [0 .. n-1], sharding indices across [jobs] OCaml domains
    (inline on the calling domain when [jobs = 1]).  Each domain gets
    its own [init ()] local state (e.g. streaming metric accumulators);
    the locals are returned for the caller to merge at the barrier.

    Outcomes are positional: escaped exceptions become [Failed] with
    the exception's rendering.  Under [fail_fast], the first failure
    stops the pool promptly — in-flight cells complete and keep their
    outcome, unclaimed cells are left [Skipped]; no report is lost.

    [f]'s behaviour must depend only on its index (derive randomness
    from the work item's coordinates, never from [Domain.self ()]); the
    outcome array is then identical for every [jobs] count. *)

type 'a outcome = Done of 'a | Failed of string | Skipped

val outcome_ok : 'a outcome -> bool

val map :
  jobs:int ->
  fail_fast:bool ->
  n:int ->
  init:(unit -> 'l) ->
  f:('l -> int -> ('r, string) result) ->
  'r outcome array * 'l list
(** The locals list has one entry per domain, in domain order. *)
