(** Top-level driver over all passes and all bundled data types. *)

type target = {
  name : string;
  spec_lint : unit -> Diagnostic.t list;
  class_audit : unit -> Diagnostic.t list;
  monitor_audit : unit -> Diagnostic.t list;
}

val target :
  string ->
  (module Spec.Data_type.S
     with type state = 's
      and type invocation = 'i
      and type response = 'r) ->
  'i list list ->
  target
(** Pack any data type (with extra search contexts) for auditing —
    user-supplied specs can be audited the same way as the bundled
    ones. *)

val targets : target list
(** The ten bundled data types, including the register × queue
    product. *)

val target_names : string list
val find_target : string -> target option

val audit_target : target -> Diagnostic.t list
(** spec_lint + class_audit + monitor_audit for one data type. *)

val audit_types : unit -> Diagnostic.t list

val audit_all : unit -> Report.t
(** Everything: all types plus the bound-table audit. *)
