lib/core/timestamp.mli: Format Rat Stdlib
