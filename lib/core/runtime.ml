(** End-to-end harness: build a cluster running a chosen algorithm,
    drive a workload through it, and distill the trace into a report —
    completed operations, a machine-checked linearization, and latency
    summaries per operation and per class. *)

module Make (T : Spec.Data_type.S) = struct
  module Sem = Spec.Data_type.Semantics (T)
  module Checker = Lin.Checker.Make (T)
  module Wtlw_impl = Wtlw.Make (T)
  module Centralized_impl = Centralized.Make (T)
  module Tob_impl = Tob.Make (T)

  type algorithm = Wtlw of { x : Rat.t } | Centralized | Tob

  let algorithm_name = function
    | Wtlw { x } -> Printf.sprintf "wtlw(X=%s)" (Rat.to_string x)
    | Centralized -> "centralized"
    | Tob -> "total-order-broadcast"

  type workload =
    | Schedule of T.invocation Workload.entry list
    | Closed_loop of { per_proc : int; think : Rat.t; seed : int }

  type report = {
    algorithm : string;
    operations : (T.invocation, T.response) Sim.Trace.operation list;
    linearization : (T.invocation, T.response) Sim.Trace.operation list option;
    by_op : (string * Metrics.summary) list;
    by_kind : (Spec.Op_kind.t * Metrics.summary) list;
    messages : int;
    events : int;
    pending : int;
    delays_admissible : bool;
  }

  let kind_of inv = Sem.kind_of inv

  (* Drive one engine (of any algorithm) through the workload. *)
  let drive (type m g) ~(model : Sim.Model.t)
      (engine : (m, g, T.invocation, T.response) Sim.Engine.t) workload =
    (match workload with
    | Schedule entries ->
        List.iter
          (fun { Workload.proc; at; inv } ->
            Sim.Engine.schedule_invoke engine ~at ~proc inv)
          (Workload.sort_schedule entries)
    | Closed_loop { per_proc; think; seed } ->
        let rng = Random.State.make [| seed |] in
        let remaining = Array.make model.n per_proc in
        Sim.Engine.set_response_callback engine
          (fun ~proc ~inv:_ ~resp:_ ~time ->
            if remaining.(proc) > 0 then begin
              remaining.(proc) <- remaining.(proc) - 1;
              Sim.Engine.schedule_invoke engine ~at:(Rat.add time think) ~proc
                (T.gen_invocation rng)
            end);
        for proc = 0 to model.n - 1 do
          remaining.(proc) <- remaining.(proc) - 1;
          Sim.Engine.schedule_invoke engine
            ~at:(Rat.make proc (2 * model.n))
            ~proc (T.gen_invocation rng)
        done);
    Sim.Engine.run engine

  (* Assemble a report from the trace's incremental sink snapshots:
     counters, pairing and admissibility are O(1) lookups, so the only
     remaining pass is over completed operations (for the checker),
     never over raw events. *)
  let report_of_trace ~model ~algorithm ~check trace =
    let operations = Sim.Trace.operations trace in
    {
      algorithm;
      operations;
      linearization = (if check then Checker.check operations else None);
      by_op = Metrics.by_op ~op_of:T.op_of operations;
      by_kind = Metrics.by_kind ~kind_of operations;
      messages = Sim.Trace.send_count trace;
      events = Sim.Trace.event_count trace;
      pending = Sim.Trace.pending_count trace;
      delays_admissible = Sim.Trace.delays_admissible model trace;
    }

  (* Streaming variant used by [run]: latency summaries accumulate in
     [Metrics.Grouped] sinks as responses are recorded, so the report
     needs no per-operation metric pass afterwards. *)
  let report_of_run (type m g) ~(model : Sim.Model.t) ~algorithm ~check
      (engine : (m, g, T.invocation, T.response) Sim.Engine.t) workload =
    let trace = Sim.Engine.trace engine in
    let by_op_acc = Metrics.Grouped.create () in
    let by_kind_acc = Metrics.Grouped.create () in
    Sim.Trace.on_operation trace (fun op ->
        let l = Metrics.latency op in
        Metrics.Grouped.add by_op_acc (T.op_of op.inv) l;
        Metrics.Grouped.add by_kind_acc (kind_of op.inv) l);
    drive ~model engine workload;
    let operations = Sim.Trace.operations trace in
    {
      algorithm;
      operations;
      linearization = (if check then Checker.check operations else None);
      by_op = Metrics.Grouped.summaries by_op_acc;
      by_kind = Metrics.Grouped.summaries by_kind_acc;
      messages = Sim.Trace.send_count trace;
      events = Sim.Trace.event_count trace;
      pending = Sim.Trace.pending_count trace;
      delays_admissible = Sim.Trace.delays_admissible model trace;
    }

  let run ?(check = true) ?retain_events ~(model : Sim.Model.t) ~offsets
      ~delay ~algorithm ~workload () =
    let name = algorithm_name algorithm in
    match algorithm with
    | Wtlw { x } ->
        let cluster =
          Wtlw_impl.create ?retain_events ~model ~x ~offsets ~delay ()
        in
        report_of_run ~model ~algorithm:name ~check cluster.engine workload
    | Centralized ->
        let cluster =
          Centralized_impl.create ?retain_events ~model ~offsets ~delay ()
        in
        report_of_run ~model ~algorithm:name ~check cluster.engine workload
    | Tob ->
        let cluster =
          Tob_impl.create ?retain_events ~model ~offsets ~delay ()
        in
        report_of_run ~model ~algorithm:name ~check cluster.engine workload

  (* A run is accepted when every operation completed, all delays were
     admissible, and a linearization was found. *)
  let ok report =
    report.pending = 0
    && report.delays_admissible
    && Option.is_some report.linearization

  let pp_report ppf r =
    Format.fprintf ppf "@[<v>%s: %d operations, %d messages, %d events@,"
      r.algorithm
      (List.length r.operations)
      r.messages r.events;
    Format.fprintf ppf "linearizable: %b; delays admissible: %b; pending: %d@,"
      (Option.is_some r.linearization)
      r.delays_admissible r.pending;
    List.iter
      (fun (op, s) ->
        Format.fprintf ppf "  %-16s %a@," op Metrics.pp_summary s)
      r.by_op;
    List.iter
      (fun (kind, s) ->
        Format.fprintf ppf "  [%s] %a@," (Spec.Op_kind.to_string kind)
          Metrics.pp_summary s)
      r.by_kind;
    Format.fprintf ppf "@]"
end
