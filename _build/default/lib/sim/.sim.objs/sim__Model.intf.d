lib/sim/model.mli: Format Rat
