lib/sim/net.ml: Array Format Model Random Rat
