(* The executor: lower a scenario onto the existing [Runtime.Config]
   machinery, run it, and judge the result against the scenario's
   expectation and temporal predicate.

   Lowering is the same path the sweep engine takes (first-class
   [Sweep.Packed_type] module -> [Runtime.Make] -> [Config.t]), so a
   scenario is exactly as reproducible as a sweep cell: the scenario
   seed drives delay sampling and workload generation, and nothing else
   is random. *)

open Types

let ( let* ) r f = Result.bind r f

(* What one run did, and whether it met the scenario's expectation.
   [passed] is the headline verdict; the rest is the evidence. *)
type outcome = {
  scenario : string;  (** the scenario's name *)
  passed : bool;  (** did the run meet [expect] (and [predicate])? *)
  certified : bool;  (** [Runtime.ok] and the predicate held *)
  ok : bool;  (** [Runtime.ok]: complete, admissible, linearizable *)
  linearizable : bool;
  converged : bool option;  (** replica convergence (Wtlw runs) *)
  predicate_holds : bool;
  operations : int;
  pending : int;
  messages : int;
  events : int;
  truncated : bool;
  delays_admissible : bool;
  skew_admissible : bool;
  faults : int;  (** total injected faults *)
  checked_by : string option;
  diagnostic : string option;
      (** named abort (node budget, bad config, ...); the run produced
          no report *)
  witness : string option;
      (** when certification failed: the first failing clause, in
          order — linearizability, convergence, pending, admissibility,
          truncation, predicate *)
  by_kind : (Spec.Op_kind.t * Rat.t) list;
      (** worst observed latency per operation class — the raw material
          for bound probing *)
  wall_s : float;
}

let passes o = o.passed

(* ------------------------------------------------------------------ *)
(* Lowering helpers shared across types                                *)

let delay_of (s : t) : Sim.Net.t =
  match s.delays with
  | Random_delays -> Sim.Net.random_model ~seed:s.seed s.model
  | Max_delays -> Sim.Net.max_delay_model s.model
  | Min_delays -> Sim.Net.min_delay_model s.model
  | Matrix m -> Sim.Net.matrix m

let runtime_algorithm = function
  | Wtlw { x; _ } -> Core.Runtime.Wtlw { x }
  | Centralized -> Core.Runtime.Centralized
  | Tob -> Core.Runtime.Tob

(* The ablation knob becomes a [Config.timing] override; the repaired
   default knob lowers to [None] so the validated [create] path runs. *)
let timing_override (s : t) =
  match s.algorithm with
  | Wtlw { knob = Core.Ablation.Paper; _ } -> None
  | Wtlw { knob; _ } ->
      Some (fun model ~x -> Core.Ablation.timing_of_knob model ~x knob)
  | Centralized | Tob -> None

(* ------------------------------------------------------------------ *)
(* Per-type executor                                                   *)

module Run (T : Spec.Data_type.S) = struct
  module R = Core.Runtime.Make (T)

  (* [Sample] indexes the type's canonical samples for the operation;
     [Tagged] replays the same bounded draw the workload generators
     use, so a tagged reference names the injectively-tagged value
     (queue [(tagged enqueue 54)] is [Enqueue 55]). *)
  let resolve_op (r : op_ref) : (T.invocation, string) result =
    match r with
    | Sample { op; index } -> (
        match List.nth_opt (T.sample_invocations op) index with
        | Some inv -> Ok inv
        | None -> Error (Printf.sprintf "no sample invocation %s#%d" op index)
        | exception _ -> Error ("unknown operation " ^ op))
    | Tagged { op; tag } ->
        let rng = Random.State.make [| 0x5ce; tag |] in
        let rec draw attempts =
          if attempts = 0 then
            Error (Printf.sprintf "operation %s never drawn for tag %d" op tag)
          else
            let inv = T.gen_tagged rng ~tag in
            if String.equal (T.op_of inv) op then Ok inv
            else draw (attempts - 1)
        in
        draw 128

  let workload_of (s : t) : (R.workload, string) result =
    match s.workload with
    | Explicit entries ->
        let* entries =
          List.fold_right
            (fun { proc; at; op } acc ->
              let* acc = acc in
              if proc < 0 || proc >= s.model.Sim.Model.n then
                Error (Printf.sprintf "entry proc %d outside the model" proc)
              else
                let* inv = resolve_op op in
                Ok ({ Core.Workload.proc; at; inv } :: acc))
            entries (Ok [])
        in
        Ok (R.Schedule entries)
    | Closed_loop { per_proc; think } ->
        Ok (R.Closed_loop { per_proc; think; seed = s.seed })
    | Generated { arrival; zipf; keys; ops } -> (
        match
          Core.Workload.Gen.create ~arrival ~zipf ~keys ~ops ~seed:s.seed
            ~invocation:(fun rng ~key:_ ~seq -> T.gen_tagged rng ~tag:seq)
            ()
        with
        | gen ->
            let route =
              Core.Workload.Route.create ~procs:s.model.Sim.Model.n
                ~keep:(fun _ -> true)
                gen
            in
            Ok
              (R.Paced
                 {
                   next =
                     (fun ~proc ->
                       Option.map
                         (fun (at, k) -> (at, k.Core.Workload.inv))
                         (Core.Workload.Route.next route ~proc));
                 })
        | exception Invalid_argument m -> Error ("generated workload: " ^ m))

  let config_of (s : t) : (R.Config.t, string) result =
    let* workload = workload_of s in
    if Array.length s.offsets <> s.model.Sim.Model.n then
      Error "offsets length must equal the model's n"
    else
      let cfg =
        R.Config.make ~faults:s.faults ?max_events:s.max_events
          ?max_check_nodes:s.max_check_nodes ~checker:s.checker
          ?timing:(timing_override s) ~model:s.model ~offsets:s.offsets
          ~delay:(delay_of s)
          ~algorithm:(runtime_algorithm s.algorithm)
          ~workload ()
      in
      Ok (if s.reliable then R.Config.reliable cfg else cfg)

  (* ---------------------------------------------------------------- *)
  (* Predicate evaluation                                              *)

  let eval_state_atom ~completed (op : (T.invocation, T.response) Sim.Trace.operation)
      = function
    | Completed_ge k -> completed >= k
    | Latency_le t -> Rat.compare (Core.Metrics.latency op) t <= 0
    | Op_is name -> String.equal (T.op_of op.inv) name
    | Resp_by t -> Rat.compare op.resp_time t <= 0

  let eval_final (r : R.report) converged = function
    | Pending_le k -> r.pending <= k
    | Messages_le k -> r.messages <= k
    | Faults_le k -> Sim.Trace.total_faults r.faults <= k
    | Linearizable -> Option.is_some r.linearization
    | Converged -> ( match converged with Some b -> b | None -> true)

  (* Completed operations in response order (ties by process), the
     trace-state sequence the temporal operators quantify over. *)
  let observed_states (r : R.report) =
    List.stable_sort
      (fun (a : (T.invocation, T.response) Sim.Trace.operation) b ->
        match Rat.compare a.resp_time b.resp_time with
        | 0 -> compare a.proc b.proc
        | c -> c)
      r.operations

  let rec eval_pred (r : R.report) states converged = function
    | True -> true
    | Not p -> not (eval_pred r states converged p)
    | And (p, q) ->
        eval_pred r states converged p && eval_pred r states converged q
    | Or (p, q) ->
        eval_pred r states converged p || eval_pred r states converged q
    | Always a ->
        List.for_all
          (fun (i, op) -> eval_state_atom ~completed:(i + 1) op a)
          states
    | Eventually a ->
        List.exists
          (fun (i, op) -> eval_state_atom ~completed:(i + 1) op a)
          states
    | Finally a -> eval_final r converged a

  (* ---------------------------------------------------------------- *)
  (* Verdicts                                                          *)

  let witness_of (r : R.report) converged predicate_holds =
    if Option.is_none r.linearization then Some "history not linearizable"
    else if converged = Some false then Some "replicas diverged"
    else if r.pending > 0 then
      Some (Printf.sprintf "%d invocations never completed" r.pending)
    else if not r.delays_admissible then Some "delays left the model envelope"
    else if not r.skew_admissible then Some "clock skew exceeded eps"
    else if r.truncated then Some "run truncated at the step limit"
    else if not predicate_holds then Some "temporal predicate violated"
    else None

  let aborted (s : t) ~wall_s msg =
    let passed =
      match s.expect with
      | Diagnostic sub ->
          (* substring match, so "node budget" matches the checker's
             full message *)
          let len = String.length sub in
          let n = String.length msg in
          len = 0
          || Seq.exists
               (fun i -> String.equal (String.sub msg i len) sub)
               (Seq.init (max 0 (n - len + 1)) Fun.id)
      | Certify | Violate -> false
    in
    {
      scenario = s.name;
      passed;
      certified = false;
      ok = false;
      linearizable = false;
      converged = None;
      predicate_holds = false;
      operations = 0;
      pending = 0;
      messages = 0;
      events = 0;
      truncated = false;
      delays_admissible = true;
      skew_admissible = true;
      faults = 0;
      checked_by = None;
      diagnostic = Some msg;
      witness = None;
      by_kind = [];
      wall_s;
    }

  let of_report (s : t) ~wall_s (r : R.report) =
    let converged = r.converged in
    let states = List.mapi (fun i op -> (i, op)) (observed_states r) in
    let predicate_holds = eval_pred r states converged s.predicate in
    let ok = R.ok r in
    let diverged = converged = Some false in
    let certified = ok && (not diverged) && predicate_holds in
    let witness =
      if certified then None else witness_of r converged predicate_holds
    in
    let passed =
      match s.expect with
      | Certify -> certified
      | Violate -> not certified
      | Diagnostic _ -> false
    in
    {
      scenario = s.name;
      passed;
      certified;
      ok;
      linearizable = Option.is_some r.linearization;
      converged;
      predicate_holds;
      operations = List.length r.operations;
      pending = r.pending;
      messages = r.messages;
      events = r.events;
      truncated = r.truncated;
      delays_admissible = r.delays_admissible;
      skew_admissible = r.skew_admissible;
      faults = Sim.Trace.total_faults r.faults;
      checked_by = r.checked_by;
      diagnostic = None;
      witness;
      by_kind =
        List.map (fun (k, su) -> (k, su.Core.Metrics.max)) r.by_kind;
      wall_s;
    }

  let run (s : t) =
    let t0 = Unix.gettimeofday () in
    let wall_s () = Unix.gettimeofday () -. t0 in
    match config_of s with
    | Error e -> aborted s ~wall_s:(wall_s ()) ("bad scenario: " ^ e)
    | Ok cfg -> (
        match R.run cfg with
        | report -> of_report s ~wall_s:(wall_s ()) report
        | exception Lin.Checker.Node_budget_exceeded { nodes; _ } ->
            aborted s ~wall_s:(wall_s ())
              (Printf.sprintf "node budget exceeded after %d nodes" nodes)
        | exception Sim.Engine.Deadline_exceeded _ ->
            aborted s ~wall_s:(wall_s ()) "deadline exceeded"
        | exception Invalid_argument m ->
            aborted s ~wall_s:(wall_s ()) ("invalid run: " ^ m))
end

(* ------------------------------------------------------------------ *)
(* Type dispatch                                                       *)

let run (s : t) : outcome =
  match Sweep.Packed_type.find s.dt with
  | None ->
      let module RQ = Run (Spec.Fifo_queue) in
      RQ.aborted s ~wall_s:0. (Printf.sprintf "unknown data type %S" s.dt)
  | Some pt ->
      let (module T : Spec.Data_type.S) = Sweep.Packed_type.modl pt in
      let module E = Run (T) in
      E.run s

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let pp_outcome ppf (o : outcome) =
  Format.fprintf ppf "@[<v>scenario %s: %s@," o.scenario
    (if o.passed then "PASS" else "FAIL");
  (match o.diagnostic with
  | Some d -> Format.fprintf ppf "diagnostic: %s@," d
  | None ->
      Format.fprintf ppf
        "%d operations, %d messages, %d events; linearizable: %b; \
         predicate: %b@,"
        o.operations o.messages o.events o.linearizable o.predicate_holds;
      (match o.converged with
      | Some c -> Format.fprintf ppf "replicas converged: %b@," c
      | None -> ());
      (match o.checked_by with
      | Some c -> Format.fprintf ppf "checked by: %s@," c
      | None -> ());
      (match o.witness with
      | Some w -> Format.fprintf ppf "witness: %s@," w
      | None -> ()));
  Format.fprintf ppf "@]"

let json_of_outcome (o : outcome) =
  let b = Buffer.create 256 in
  let str_opt = function
    | None -> "null"
    | Some s -> Printf.sprintf "%S" s
  in
  Printf.bprintf b
    {|{"scenario": %S, "passed": %b, "certified": %b, "linearizable": %b, "converged": %s, "predicate": %b, "operations": %d, "pending": %d, "messages": %d, "events": %d, "faults": %d, "diagnostic": %s, "witness": %s, "wall_s": %.3f}|}
    o.scenario o.passed o.certified o.linearizable
    (match o.converged with
    | None -> "null"
    | Some c -> string_of_bool c)
    o.predicate_holds o.operations o.pending o.messages o.events o.faults
    (str_opt o.diagnostic) (str_opt o.witness) o.wall_s;
  Buffer.contents b
