(* Multicore sweep engine: evaluate a declarative campaign grid —
   data type x algorithm x model point x fault plan x channel leg x
   seed — by sharding cells across a fixed domain pool (Pool).

   Determinism contract: a cell's behaviour is a pure function of its
   coordinates.  The per-cell RNG seed is derived by hashing the cell's
   canonical key string (FNV-1a), never from the claiming domain or the
   wall clock, so verdicts — and, because Metrics.Acc merging is exact
   rational arithmetic, the merged campaign summaries — are identical
   for every --jobs count.  Only [wall_s] and [jobs] vary, and both are
   excluded from {!fingerprint}. *)

module Metrics = Core.Metrics

(* Algorithm axis of the grid.  Wtlw's tradeoff parameter is declared
   as a fraction of [d - eps] so one grid entry stays valid at every
   model point (Lemma 4 requires X in [0, d - eps]). *)
type algo =
  | Wtlw of { frac : Rat.t }
  | Centralized
  | Tob

let algo_label = function
  | Wtlw { frac } -> Printf.sprintf "wtlw(%s)" (Rat.to_string frac)
  | Centralized -> "centralized"
  | Tob -> "tob"

let resolve_x (m : Sim.Model.t) = function
  | Wtlw { frac } -> Rat.mul frac (Rat.sub m.d m.eps)
  | Centralized | Tob -> Rat.zero

let runtime_algo (m : Sim.Model.t) = function
  | Wtlw _ as a -> Core.Runtime.Wtlw { x = resolve_x m a }
  | Centralized -> Core.Runtime.Centralized
  | Tob -> Core.Runtime.Tob

type channel_leg = Raw | Recovered

let leg_label = function Raw -> "raw" | Recovered -> "recovered"

(* Delay-schedule axis: random admissible delays (seeded from the cell
   coordinates), or the all-max / all-min adversarial schedules the
   table measurements use to realize worst cases. *)
type delays = Random_delays | Max_delays | Min_delays

let delays_label = function
  | Random_delays -> "random"
  | Max_delays -> "max"
  | Min_delays -> "min"

type grid = {
  types : Packed_type.t list;
  algos : algo list;
  points : Sim.Model.t list;
  delays : delays list;
  plans : (string * Sim.Fault.plan) list;
  legs : channel_leg list;
  seeds : int list;
  per_proc : int;
  max_events : int;
  max_check_nodes : int option;
  checker : Core.Runtime.checker;
      (** certification engine for every cell; [Monitor] routes through
          the specialized per-type monitors with Wing-Gong fallback *)
}

let default_points =
  [
    Sim.Model.make ~n:3 ~d:(Rat.of_int 10) ~u:(Rat.of_int 4) ~eps:Rat.one;
    Sim.Model.make ~n:4 ~d:(Rat.of_int 8) ~u:(Rat.of_int 2)
      ~eps:(Rat.make 1 2);
  ]

(* The reference grid of the acceptance criteria: every bundled type,
   all three algorithms, two model points, both channel legs. *)
let default_grid =
  {
    types = Packed_type.all;
    algos = [ Wtlw { frac = Rat.make 1 2 }; Centralized; Tob ];
    points = default_points;
    delays = [ Random_delays ];
    plans = [ ("none", Sim.Fault.none) ];
    legs = [ Raw; Recovered ];
    seeds = [ 1 ];
    per_proc = 2;
    max_events = 500_000;
    max_check_nodes = Some 5_000_000;
    checker = Core.Runtime.Monitor;
  }

type cell = {
  dt : Packed_type.t;
  algo : algo;
  point : Sim.Model.t;
  delays : delays;
  plan_label : string;
  plan : Sim.Fault.plan;
  leg : channel_leg;
  seed : int;  (** the grid's base seed; the run uses {!derived_seed} *)
}

let cells grid =
  List.concat_map
    (fun dt ->
      List.concat_map
        (fun algo ->
          List.concat_map
            (fun point ->
              List.concat_map
                (fun delays ->
                  List.concat_map
                    (fun (plan_label, plan) ->
                      List.concat_map
                        (fun leg ->
                          List.map
                            (fun seed ->
                              {
                                dt;
                                algo;
                                point;
                                delays;
                                plan_label;
                                plan;
                                leg;
                                seed;
                              })
                            grid.seeds)
                        grid.legs)
                    grid.plans)
                grid.delays)
            grid.points)
        grid.algos)
    grid.types

(* Canonical cell coordinates.  This string is both the human-readable
   cell id in reports and the input to the seed hash, so it must name
   every axis that can change the run. *)
let cell_key grid (c : cell) =
  let m = c.point in
  Printf.sprintf
    "type=%s;algo=%s;n=%d;d=%s;u=%s;eps=%s;delays=%s;faults=%s;leg=%s;seed=%d;per_proc=%d"
    (Packed_type.key c.dt) (algo_label c.algo) m.n (Rat.to_string m.d)
    (Rat.to_string m.u) (Rat.to_string m.eps) (delays_label c.delays)
    c.plan_label (leg_label c.leg) c.seed grid.per_proc

(* FNV-1a, 32-bit.  Not [Hashtbl.hash]: that function is not specified
   across OCaml versions, and derived seeds must be stable so recorded
   fingerprints stay comparable. *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun ch -> h := (!h lxor Char.code ch) * 0x01000193 land 0xFFFFFFFF)
    s;
  !h

let derived_seed grid c = fnv1a (cell_key grid c)

(* Per-cell verdict: the run's health, its latency shape, and the
   worst observed latency of each class against the Table 5 formula for
   the cell's algorithm, judged against the model the run actually
   implemented (the inflated model for recovered legs). *)
type verdict = {
  key : string;
  run_seed : int;
  ok : bool;
  bound_ok : bool;
  certified : bool;  (** [ok && bound_ok] *)
  operations : int;
  messages : int;
  events : int;
  pending : int;
  truncated : bool;
  retransmits : int;
  latency : Metrics.summary option;
  hist : Metrics.Hist.t;  (** streaming latency histogram of the run *)
  by_op : (string * Metrics.summary) list;
  by_kind : (Spec.Op_kind.t * Metrics.summary) list;
  bounds : (Spec.Op_kind.t * Rat.t * Rat.t) list;
      (** (class, worst observed, upper bound) *)
}

let bound_for ~algo ~(judged : Sim.Model.t) ~x kind =
  match algo with
  | Wtlw _ -> (
      match kind with
      | Spec.Op_kind.Pure_accessor -> Bounds.Theorems.ub_pure_accessor judged ~x
      | Spec.Op_kind.Pure_mutator -> Bounds.Theorems.ub_pure_mutator judged ~x
      | Spec.Op_kind.Mixed -> Bounds.Theorems.ub_mixed judged)
  | Centralized -> Bounds.Theorems.ub_centralized judged
  | Tob -> Bounds.Theorems.ub_tob judged

let eval grid (c : cell) : (verdict, string) result =
  let key = cell_key grid c in
  let seed = derived_seed grid c in
  let m = c.point in
  let (module T : Spec.Data_type.S) = Packed_type.modl c.dt in
  let module R = Core.Runtime.Make (T) in
  let delay =
    match c.delays with
    | Random_delays -> Sim.Net.random_model ~seed m
    | Max_delays -> Sim.Net.max_delay_model m
    | Min_delays -> Sim.Net.min_delay_model m
  in
  let cfg =
    R.Config.make ~faults:c.plan ~max_events:grid.max_events
      ?max_check_nodes:grid.max_check_nodes ~checker:grid.checker ~model:m
      ~offsets:(Array.make m.n Rat.zero)
      ~delay
      ~algorithm:(runtime_algo m c.algo)
      ~workload:
        (R.Closed_loop { per_proc = grid.per_proc; think = Rat.make 1 2; seed })
      ()
  in
  let cfg = match c.leg with Raw -> cfg | Recovered -> R.Config.reliable cfg in
  match R.run cfg with
  | exception Lin.Checker.Node_budget_exceeded { nodes; prefix; total } ->
      Error
        (Format.asprintf "%s: %a (max_check_nodes)" key
           Lin.Checker.pp_budget_exceeded (nodes, prefix, total))
  | exception Invalid_argument msg -> Error (Printf.sprintf "%s: %s" key msg)
  | report ->
      let judged =
        match report.channel with Some ch -> ch.effective | None -> m
      in
      let x = resolve_x m c.algo in
      let bounds =
        List.map
          (fun (kind, (s : Metrics.summary)) ->
            (kind, s.max, bound_for ~algo:c.algo ~judged ~x kind))
          report.by_kind
      in
      let bound_ok =
        List.for_all (fun (_, worst, ub) -> Rat.le worst ub) bounds
      in
      let lat = Metrics.Acc.create () in
      List.iter (fun (_, s) -> Metrics.Acc.absorb lat s) report.by_kind;
      let ok = R.ok report in
      Ok
        {
          key;
          run_seed = seed;
          ok;
          bound_ok;
          certified = ok && bound_ok;
          operations = List.length report.operations;
          messages = report.messages;
          events = report.events;
          pending = report.pending;
          truncated = report.truncated;
          retransmits =
            (match report.channel with
            | None -> 0
            | Some ch -> ch.stats.Core.Reliable.retransmits);
          latency = Metrics.Acc.summary lat;
          hist = report.hist;
          by_op = report.by_op;
          by_kind = report.by_kind;
          bounds;
        }

(* Domain-local streaming aggregation, merged at the barrier.  The
   per-domain accumulators see different cell subsets depending on the
   partition, but Acc/Grouped merging is exact and commutative, so the
   merged totals are partition-independent. *)
type local = {
  lat : Metrics.Acc.t;
  hist : Metrics.Hist.t;
  kinds : Spec.Op_kind.t Metrics.Grouped.t;
}

type t = {
  grid : grid;
  cells : cell array;
  results : verdict Pool.outcome array;
  total : Metrics.summary option;
  hist : Metrics.Hist.t;  (** merged latency histogram of every cell *)
  by_kind : (Spec.Op_kind.t * Metrics.summary) list;  (** sorted by class *)
  jobs : int;
  wall_s : float;
}

let run ?(jobs = 1) ?(fail_fast = false) grid =
  let cells = Array.of_list (cells grid) in
  let t0 = Unix.gettimeofday () in
  let results, locals =
    Pool.map ~jobs ~fail_fast ~n:(Array.length cells)
      ~init:(fun () ->
        {
          lat = Metrics.Acc.create ();
          hist = Metrics.Hist.create ();
          kinds = Metrics.Grouped.create ();
        })
      ~f:(fun local i ->
        match eval grid cells.(i) with
        | Ok v ->
            (match v.latency with
            | Some s -> Metrics.Acc.absorb local.lat s
            | None -> ());
            Metrics.Hist.merge local.hist v.hist;
            List.iter
              (fun (k, s) -> Metrics.Grouped.absorb local.kinds k s)
              v.by_kind;
            Ok v
        | Error _ as e -> e)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let lat = Metrics.Acc.create () in
  let hist = Metrics.Hist.create () in
  let kinds = Metrics.Grouped.create () in
  List.iter
    (fun l ->
      Metrics.Acc.merge lat l.lat;
      Metrics.Hist.merge hist l.hist;
      Metrics.Grouped.merge kinds l.kinds)
    locals;
  let by_kind =
    (* Grouped preserves first-seen order, which depends on the
       partition; sort by class name for a deterministic report. *)
    List.sort
      (fun (a, _) (b, _) ->
        compare (Spec.Op_kind.to_string a) (Spec.Op_kind.to_string b))
      (Metrics.Grouped.summaries kinds)
  in
  {
    grid;
    cells;
    results;
    total = Metrics.Acc.summary lat;
    hist;
    by_kind;
    jobs;
    wall_s;
  }

let certified t =
  Array.length t.results > 0
  && Array.for_all
       (function Pool.Done v -> v.certified | Pool.Failed _ | Pool.Skipped -> false)
       t.results

let counts t =
  let done_ = ref 0 and failed = ref 0 and skipped = ref 0 and cert = ref 0 in
  Array.iter
    (function
      | Pool.Done v ->
          incr done_;
          if v.certified then incr cert
      | Pool.Failed _ -> incr failed
      | Pool.Skipped -> incr skipped)
    t.results;
  (!done_, !cert, !failed, !skipped)

(* ---------- deterministic fingerprint ---------- *)

let summary_str (s : Metrics.summary) =
  Printf.sprintf "count=%d min=%s max=%s mean=%s" s.count (Rat.to_string s.min)
    (Rat.to_string s.max) (Rat.to_string s.mean)

let quantiles_str (q : Metrics.Hist.quantiles) =
  Printf.sprintf "p50=%.6g p99=%.6g p999=%.6g" q.p50 q.p99 q.p999

let fingerprint t =
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun i c ->
      Buffer.add_string buf (cell_key t.grid c);
      Buffer.add_string buf " => ";
      (match t.results.(i) with
      | Pool.Skipped -> Buffer.add_string buf "skipped"
      | Pool.Failed msg -> Buffer.add_string buf ("failed: " ^ msg)
      | Pool.Done v ->
          Buffer.add_string buf
            (Printf.sprintf "%s ops=%d messages=%d events=%d pending=%d%s"
               (if v.certified then "certified"
                else if v.ok then "bound-violation"
                else "flagged")
               v.operations v.messages v.events v.pending
               (match v.latency with
               | None -> ""
               | Some s -> " " ^ summary_str s)));
      Buffer.add_char buf '\n')
    t.cells;
  (match t.total with
  | None -> ()
  | Some s -> Buffer.add_string buf ("total: " ^ summary_str s ^ "\n"));
  (match Metrics.Hist.quantiles t.hist with
  | None -> ()
  | Some q -> Buffer.add_string buf ("tail: " ^ quantiles_str q ^ "\n"));
  List.iter
    (fun (k, s) ->
      Buffer.add_string buf
        (Printf.sprintf "%s: %s\n" (Spec.Op_kind.to_string k) (summary_str s)))
    t.by_kind;
  Buffer.contents buf

(* ---------- reports ---------- *)

let pp ppf t =
  let done_, cert, failed, skipped = counts t in
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i c ->
      let verdict =
        match t.results.(i) with
        | Pool.Skipped -> "SKIPPED"
        | Pool.Failed _ -> "FAILED"
        | Pool.Done v ->
            if v.certified then "certified"
            else if v.ok then "BOUND-VIOLATION"
            else "FLAGGED"
      in
      Format.fprintf ppf "%-16s %s@," verdict (cell_key t.grid c))
    t.cells;
  (match t.total with
  | None -> ()
  | Some s ->
      Format.fprintf ppf "latency over %d operations: %a@," s.count
        Metrics.pp_summary s);
  (match Metrics.Hist.quantiles t.hist with
  | None -> ()
  | Some q -> Format.fprintf ppf "tail: %a@," Metrics.Hist.pp_quantiles q);
  Format.fprintf ppf
    "%d cells: %d done (%d certified), %d failed, %d skipped; jobs=%d \
     wall=%.2fs@]"
    (Array.length t.cells) done_ cert failed skipped t.jobs t.wall_s

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_json_summary ppf (s : Metrics.summary) =
  Format.fprintf ppf
    "{\"count\":%d,\"min\":\"%s\",\"max\":\"%s\",\"mean\":\"%s\"}" s.count
    (Rat.to_string s.min) (Rat.to_string s.max) (Rat.to_string s.mean)

let pp_json_quantiles ppf (q : Metrics.Hist.quantiles) =
  Format.fprintf ppf "{\"p50\":%.6g,\"p99\":%.6g,\"p999\":%.6g}" q.p50 q.p99
    q.p999

let pp_json_verdict ppf (v : verdict) =
  Format.fprintf ppf
    "{\"status\":\"done\",\"seed\":%d,\"ok\":%b,\"bound_ok\":%b,\"certified\":%b,\"operations\":%d,\"messages\":%d,\"events\":%d,\"pending\":%d,\"truncated\":%b,\"retransmits\":%d"
    v.run_seed v.ok v.bound_ok v.certified v.operations v.messages v.events
    v.pending v.truncated v.retransmits;
  (match v.latency with
  | None -> ()
  | Some s -> Format.fprintf ppf ",\"latency\":%a" pp_json_summary s);
  (match Metrics.Hist.quantiles v.hist with
  | None -> ()
  | Some q -> Format.fprintf ppf ",\"quantiles\":%a" pp_json_quantiles q);
  Format.fprintf ppf ",\"bounds\":[";
  List.iteri
    (fun i (k, worst, ub) ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf
        "{\"class\":\"%s\",\"worst\":\"%s\",\"bound\":\"%s\",\"within\":%b}"
        (Spec.Op_kind.to_string k) (Rat.to_string worst) (Rat.to_string ub)
        (Rat.le worst ub))
    v.bounds;
  Format.fprintf ppf "]}"

let pp_json ppf t =
  let done_, cert, failed, skipped = counts t in
  Format.fprintf ppf "{\"cells\":[";
  Array.iteri
    (fun i c ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf "{\"key\":\"%s\",\"verdict\":" (json_string (cell_key t.grid c));
      (match t.results.(i) with
      | Pool.Skipped -> Format.fprintf ppf "{\"status\":\"skipped\"}"
      | Pool.Failed msg ->
          Format.fprintf ppf "{\"status\":\"failed\",\"error\":\"%s\"}"
            (json_string msg)
      | Pool.Done v -> pp_json_verdict ppf v);
      Format.fprintf ppf "}")
    t.cells;
  Format.fprintf ppf "],\"summary\":{";
  (match t.total with
  | None -> ()
  | Some s -> Format.fprintf ppf "\"latency\":%a," pp_json_summary s);
  (match Metrics.Hist.quantiles t.hist with
  | None -> ()
  | Some q -> Format.fprintf ppf "\"quantiles\":%a," pp_json_quantiles q);
  Format.fprintf ppf "\"by_kind\":[";
  List.iteri
    (fun i (k, s) ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf "{\"class\":\"%s\",\"latency\":%a}"
        (Spec.Op_kind.to_string k) pp_json_summary s)
    t.by_kind;
  Format.fprintf ppf
    "],\"done\":%d,\"certified_cells\":%d,\"failed\":%d,\"skipped\":%d},\"jobs\":%d,\"wall_s\":%.3f,\"certified\":%b}"
    done_ cert failed skipped t.jobs t.wall_s (certified t)

(* ---------- robustness matrix on the pool ---------- *)

(* The full (data type x nemesis case) robustness matrix, one pool job
   per cell.  A cell's outcome depends only on its coordinates (both
   legs reuse the caller's seed, exactly as the old sequential driver
   did), so the matrix is identical for every [jobs] count and is
   always returned in (type, case) order.  fail_fast is deliberately
   not offered: certification semantics require every cell's verdict. *)
let robustness ?(jobs = 1) ?config ?per_proc ~model ~x ~seed types =
  let work =
    Array.of_list
      (List.concat_map
         (fun dt ->
           List.map
             (fun case -> (dt, case))
             (Core.Robustness.default_cases ~seed model))
         types)
  in
  let results, _ =
    Pool.map ~jobs ~fail_fast:false ~n:(Array.length work)
      ~init:(fun () -> ())
      ~f:(fun () i ->
        let dt, case = work.(i) in
        let (module T : Spec.Data_type.S) = Packed_type.modl dt in
        let module M = Core.Robustness.Make (T) in
        Ok (M.run_cell ?config ?per_proc ~model ~x ~seed case))
  in
  Array.to_list
    (Array.mapi
       (fun i outcome ->
         match outcome with
         | Pool.Done cell -> cell
         | Pool.Failed msg ->
             let dt, case = work.(i) in
             let leg = Core.Robustness.aborted_leg msg in
             Core.Robustness.cell_of_legs ~data_type:(Packed_type.spec_name dt)
               case ~raw:leg ~recovered:leg
         | Pool.Skipped ->
             let dt, case = work.(i) in
             let leg = Core.Robustness.aborted_leg "skipped" in
             Core.Robustness.cell_of_legs ~data_type:(Packed_type.spec_name dt)
               case ~raw:leg ~recovered:leg)
       results)
