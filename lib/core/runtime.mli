(** End-to-end harness: build a cluster running a chosen algorithm,
    drive a workload through it, and distill the trace into a report —
    completed operations, a machine-checked linearization, and latency
    summaries per operation and per class.

    The single entry point is {!Make.run}, which takes a
    {!Make.Config.t} record naming every knob of a run. *)

type algorithm =
  | Wtlw of { x : Rat.t }  (** the paper's Algorithm 1 (repaired timing) *)
  | Centralized  (** folklore: forward everything to [p_0] *)
  | Tob  (** folklore: clock-based total-order broadcast *)

val algorithm_name : algorithm -> string

type checker =
  | Monitor
      (** per-type O(n log n) monitors ({!Monitor.Make}), falling back
          to Wing-Gong for unmonitored types and uncertifiable
          histories — the default *)
  | Wing_gong  (** force the exponential DFS (cross-validation) *)

val checker_name : checker -> string

module Make (T : Spec.Data_type.S) : sig
  module Sem : module type of Spec.Data_type.Semantics (T)
  module Checker : module type of Lin.Checker.Make (T)

  type nonrec algorithm = algorithm =
    | Wtlw of { x : Rat.t }  (** the paper's Algorithm 1 (repaired timing) *)
    | Centralized  (** folklore: forward everything to [p_0] *)
    | Tob  (** folklore: clock-based total-order broadcast *)

  val algorithm_name : algorithm -> string

  type nonrec checker = checker =
    | Monitor  (** per-type monitors with Wing-Gong fallback (default) *)
    | Wing_gong  (** force the exponential DFS *)

  val checker_name : checker -> string

  type workload =
    | Schedule of T.invocation Workload.entry list
        (** open loop: explicit invocation times (caller must respect
            the one-pending-operation constraint) *)
    | Closed_loop of { per_proc : int; think : Rat.t; seed : int }
        (** each process performs [per_proc] random operations, each
            invoked [think] after the previous response *)
    | Paced of { next : proc:int -> (Rat.t * T.invocation) option }
        (** streamed open loop with backpressure: [next ~proc] yields
            process [proc]'s next arrival ([None] = stream exhausted
            for that process), pulled once at start-up and then on each
            response; an arrival earlier than the response that pulled
            it is clamped forward, so the one-pending-operation
            constraint holds for any arrival rate.  Feed it from a
            {!Workload.Route} for generator-driven million-op runs that
            never materialize a schedule. *)

  (** Description of the reliable channel a run was layered over
      ([Config.channel]): its retransmission config, the inflated model
      the report was judged against, and the channel counters. *)
  type channel = {
    config : Reliable.config;
    effective : Sim.Model.t;
    stats : Reliable.stats;
  }

  type report = {
    algorithm : string;
    operations : (T.invocation, T.response) Sim.Trace.operation list;
    linearization : (T.invocation, T.response) Sim.Trace.operation list option;
        (** a legal real-time-respecting total order, when [check] was
            set and one exists *)
    by_op : (string * Metrics.summary) list;
    by_kind : (Spec.Op_kind.t * Metrics.summary) list;
    hist : Metrics.Hist.t;
        (** streaming latency histogram over all completed operations
            (p50/p99/p999 via {!Metrics.Hist.quantiles}) *)
    messages : int;
    events : int;
    pending : int;  (** invocations that never received a response *)
    delays_admissible : bool;
    skew_admissible : bool;
        (** were the clock offsets the processes actually ran with
            (engine offsets + injected perturbations) within the
            model's [eps]? *)
    faults : Sim.Trace.fault_counts;  (** injected-fault counters *)
    truncated : bool;
        (** the run hit the step limit; the report summarizes the
            prefix up to that point *)
    channel : channel option;  (** present for reliable-channel runs *)
    checked_by : string option;
        (** which engine produced [linearization] ("wing-gong", a
            per-type monitor, or a monitor-to-Wing-Gong fallback);
            [None] when checking was off *)
    converged : bool option;
        (** for Wtlw runs: do all replicas hold equal states at
            quiescence?  [None] for the baselines (the centralized and
            TOB implementations keep no per-process replicas to
            compare) *)
  }

  (** Everything that defines one run, in one declarative record. *)
  module Config : sig
    type t = {
      check : bool;  (** run the linearizability checker (default true) *)
      retain_events : bool;
          (** keep the per-message event list in memory (default true);
              with [false] the report is built entirely from the
              trace's streaming sinks *)
      faults : Sim.Fault.plan;  (** injected nemesis (default none) *)
      max_events : int option;
          (** engine step limit; an exceeded run is returned as a
              partial report with [truncated = true] *)
      max_check_nodes : int option;
          (** DFS node budget for the checker; an exceeded search
              raises {!Lin.Checker.Node_budget_exceeded} so a
              pathological cell aborts with a named diagnostic instead
              of hanging *)
      deadline : (unit -> bool) option;
          (** cooperative cancellation hook polled by the simulation
              loop; when it reports expiry the run aborts with
              {!Sim.Engine.Deadline_exceeded} (deliberately not caught:
              the sweep layer converts it into a [Cell_timeout]
              diagnostic, mirroring the node-budget pattern) *)
      checker : checker;
          (** which engine certifies histories (default [Monitor]) *)
      channel : Reliable.config option;
          (** [Some config]: wrap the algorithm's handlers in the
              {!Reliable} ack/retransmit channel and judge the whole
              run — internal timing, admissibility monitor, {!ok} —
              against [Reliable.inflated_model] ([d' = d + k * rto] by
              default, [eps] widened by the plan's injected skew).
              [None]: the algorithm runs directly on the network. *)
      timing : (Sim.Model.t -> x:Rat.t -> Wtlw.timing) option;
          (** override Algorithm 1's five waiting periods (the ablation
              knobs, [Core.Ablation.timing_of_knob]); applied to the
              model the run is judged against (the inflated model on
              reliable legs).  Overrides skip [Wtlw.Make.create]'s
              X-validity check — ablation timings are deliberately
              outside the sound envelope.  Ignored by the baselines.
              [None] (the default): the repaired
              {!Wtlw.default_timing}. *)
      model : Sim.Model.t;
      offsets : Rat.t array;
      delay : Sim.Net.t;
      algorithm : algorithm;
      workload : workload;
    }

    val make :
      ?check:bool ->
      ?retain_events:bool ->
      ?faults:Sim.Fault.plan ->
      ?max_events:int ->
      ?max_check_nodes:int ->
      ?deadline:(unit -> bool) ->
      ?checker:checker ->
      ?channel:Reliable.config ->
      ?timing:(Sim.Model.t -> x:Rat.t -> Wtlw.timing) ->
      model:Sim.Model.t ->
      offsets:Rat.t array ->
      delay:Sim.Net.t ->
      algorithm:algorithm ->
      workload:workload ->
      unit ->
      t

    val reliable : ?config:Reliable.config -> t -> t
    (** Set the [channel] field; [config] defaults to
        [Reliable.default_config] of the record's model. *)
  end

  val kind_of : T.invocation -> Spec.Op_kind.t

  val run : Config.t -> report
  (** Build, drive to quiescence, and summarize in one pass over the
      trace's streaming sinks.  Counts, latency summaries, pairing and
      admissibility are identical with [retain_events] on or off.
      Injected faults show up in the report's [faults] counters and its
      admissibility / pending / linearization verdicts.  A run
      exceeding [max_events] is returned as a partial report with
      [truncated = true] rather than raising.
      @raise Lin.Checker.Node_budget_exceeded when [max_check_nodes]
      is set and the linearizability search exceeds it.
      @raise Sim.Engine.Deadline_exceeded when [deadline] is set and
      reports expiry mid-run. *)

  val report_of_trace :
    ?skew_admissible:bool ->
    ?checker:checker ->
    model:Sim.Model.t ->
    algorithm:string ->
    check:bool ->
    ('msg, T.invocation, T.response) Sim.Trace.t ->
    report
  (** Summarize an existing trace (e.g. a hand-built or truncated one)
      from its sink snapshots.  [skew_admissible] (default [true])
      must be supplied by the caller — a bare trace does not know the
      offsets the run used. *)

  val ok : report -> bool
  (** Every operation completed ([pending = 0]), the run was not
      truncated, delays and skew admissible, and a linearization
      found. *)

  val pp_report : Format.formatter -> report -> unit
end
