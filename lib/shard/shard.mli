(** Sharded composite runtime: one keyspace served by N independent
    Algorithm 1 clusters, certified per object key.

    Linearizability is local (paper §2.3), and this module uses the
    fact twice.  A seed-deterministic workload stream
    ({!Core.Workload.Gen}) over a Zipf-skewed keyspace is partitioned
    by [key mod shards]; each shard runs a full
    [Runtime.Make (Spec.Keyed.Make (T))] cluster over only its keys, on
    the {!Sweep.Pool} domains.  Within a shard, every key's completed
    operations are projected out and certified independently with the
    per-type monitors, so a million-operation run decomposes into
    thousands of small [O(n log n)] checks.

    Determinism contract: every shard re-derives the same global
    stream from the config seed; per-shard network and fault seeds are
    FNV-1a hashes of canonical shard coordinates; merging uses exact
    accumulators and bucket-wise histogram addition.  {!fingerprint} is
    therefore byte-identical for every [jobs] count. *)

(** Everything that defines a sharded run, mirroring
    {!Core.Runtime.Make.Config}. *)
module Config : sig
  type t = {
    shards : int;
    ops : int;  (** total operations across all shards *)
    keys : int;  (** keyspace size (keys are [0 .. keys-1]) *)
    arrival : Core.Workload.arrival;
    zipf : float;  (** key-skew exponent; 0 = uniform *)
    faults : Sim.Fault.plan;
        (** nemesis template; each shard runs it under a derived seed *)
    channel : Core.Reliable.config option;
        (** reliable-channel leg, as in [Runtime.Config.channel] *)
    checker : Core.Runtime.checker;  (** per-key certification engine *)
    max_events : int option;
        (** per-shard step limit; defaults to headroom proportional to
            the shard's share of the stream *)
    max_check_nodes : int option;
    model : Sim.Model.t;  (** each shard runs its own [n]-process cluster *)
    algorithm : Core.Runtime.algorithm;
    seed : int;
  }

  val make :
    ?keys:int ->
    ?zipf:float ->
    ?faults:Sim.Fault.plan ->
    ?channel:Core.Reliable.config ->
    ?checker:Core.Runtime.checker ->
    ?max_events:int ->
    ?max_check_nodes:int ->
    ?seed:int ->
    shards:int ->
    ops:int ->
    arrival:Core.Workload.arrival ->
    model:Sim.Model.t ->
    algorithm:Core.Runtime.algorithm ->
    unit ->
    t
  (** Defaults: 64 keys, uniform ([zipf = 0]), no faults, raw channel,
      [Monitor] checker, seed 0.
      @raise Invalid_argument on [shards < 1], [ops < 0] or
      [keys < 1]. *)

  val reliable : ?config:Core.Reliable.config -> t -> t
  (** Set the [channel] field; [config] defaults to
      [Core.Reliable.default_config] of the record's model. *)
end

type shard_report = {
  shard : int;
  keys : int;  (** distinct keys that completed an operation here *)
  operations : int;
  messages : int;
  events : int;
  pending : int;
  truncated : bool;
  delays_admissible : bool;
  skew_admissible : bool;
  faults : Sim.Trace.fault_counts;
  linearizable : bool;  (** every key's projection certified *)
  uncertified_keys : int list;
  fallbacks : int;  (** per-key checks that fell back to Wing-Gong *)
  checked_by : string;
  certified : bool;
      (** run healthy (complete, admissible, untruncated) and
          [linearizable] *)
  hist : Core.Metrics.Hist.t;
  by_op : (string * Core.Metrics.summary) list;
}

type t = {
  data_type : string;
  algorithm : string;
  shards : int;
  ops : int;
  keyspace : int;
  arrival : string;
  zipf : float;
  seed : int;
  reports : shard_report Sweep.Pool.outcome array;  (** positional, by shard *)
  hist : Core.Metrics.Hist.t;  (** merged across shards *)
  operations : int;
  messages : int;
  events : int;
  pending : int;
  faults : Sim.Trace.fault_counts;  (** summed across shards *)
  certified : bool;  (** every shard completed and certified *)
  replayed : int;  (** shards answered from the resume journal *)
  interrupted : bool;  (** a stop request drained the pool early *)
  journal_diagnostics : string list;
      (** named corruption/truncation findings from journal loading *)
  jobs : int;
  wall_s : float;
}

val journal_header : unit -> string
(** Header fingerprint for shard-report journals (schema + compiler). *)

module Make (T : Spec.Data_type.S) : sig
  val run_shard : Config.t -> shard:int -> shard_report
  (** Run one shard inline (used by {!run}; exposed for tests). *)

  val run :
    ?jobs:int ->
    ?should_stop:(unit -> bool) ->
    ?journal_dir:string ->
    ?sync_every:int ->
    ?code_fp:string ->
    Config.t ->
    t
  (** Run all shards on [jobs] pool domains (default 1 = inline) and
      merge.  Everything but [jobs] and [wall_s] is independent of
      [jobs].  With [journal_dir], completed shard reports are
      journaled (checksummed, fsync'd every [sync_every]) and shards
      already journaled with a matching input fingerprint — shard
      coordinates, checker budgets, and the binary digest ([code_fp]
      overrides; tests) — are replayed instead of re-run, so an
      interrupted [repro load] resumes with a byte-identical
      {!fingerprint}.  [should_stop] drains the pool gracefully and
      marks the run [interrupted]. *)
end

val run :
  ?jobs:int ->
  ?should_stop:(unit -> bool) ->
  ?journal_dir:string ->
  ?sync_every:int ->
  ?code_fp:string ->
  Config.t ->
  Sweep.Packed_type.t ->
  t
(** {!Make.run} dispatched over a packed bundled type. *)

val fingerprint : t -> string
(** Deterministic rendering of per-shard and aggregate results;
    excludes [jobs] and [wall_s], so it is byte-identical across
    [--jobs] counts. *)

val pp : Format.formatter -> t -> unit
val pp_json : Format.formatter -> t -> unit
(** The [BENCH_load.json] artifact: per-shard reports plus the
    aggregate certification and quantiles. *)
