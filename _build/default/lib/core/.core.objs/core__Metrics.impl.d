lib/core/metrics.ml: Format Hashtbl List Option Rat Sim
