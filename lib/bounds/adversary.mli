(** The adversarial constructions from the proofs of Theorems 2-5, as
    executable artifacts: delay matrices, shift vectors, chop points,
    and the proofs' quantitative claims machine-checked with exact
    arithmetic.  The bench prints the matrices, regenerating Figures 2
    and 4-10. *)

type claim = { label : string; holds : bool }

val claim : string -> bool -> claim
val all_hold : claim list -> bool
val failing : claim list -> claim list
val pp_claim : Format.formatter -> claim -> unit

(** Theorem 2 (pure accessors, [u/4]): base run with uniform delays
    [d - u/2], shifted by [(±u/4, ∓u/4, 0, ...)]. *)
module Thm2 : sig
  val base_matrix : Sim.Model.t -> Rat.t array array
  val shift_vector : Sim.Model.t -> case:[ `Even | `Odd ] -> Rat.t array

  val claims : Sim.Model.t -> claim list
  (** The proof's displayed post-shift delays, validity, and skew.
      @raise Invalid_argument if [n < 3]. *)
end

(** Theorem 3 (last-sensitive mutators, [(1-1/k)u]): skewed-ring delay
    matrix [d - ((i-j) mod k)/k · u]; shift vector parameterized by the
    process [z] whose instance was linearized last. *)
module Thm3 : sig
  val base_matrix : Sim.Model.t -> k:int -> Rat.t array array
  val shift_vector : Sim.Model.t -> k:int -> z:int -> Rat.t array

  val separation_gap : Sim.Model.t -> k:int -> z:int -> Rat.t
  (** [x_{z+1} - x_z], which the proof shows equals [(1-1/k)u] — the
      real-time separation that forces the contradiction. *)

  val claims_for_z : Sim.Model.t -> k:int -> z:int -> claim list
  val claims : Sim.Model.t -> k:int -> claim list
  (** Claims 2 and 3 of the proof, for every [z]. *)
end

(** Theorem 4 (pair-free operations, [d + m]): the D1 matrix of
    Figure 2 and the shift/chop/repair pipeline of Figures 4-7. *)
module Thm4 : sig
  val m : Sim.Model.t -> Rat.t
  (** [min{eps, u, d/3}]. *)

  val d1_matrix : Sim.Model.t -> Rat.t array array
  val step3_shift : Sim.Model.t -> Rat.t array
  (** [(0, -m, 0, ...)]: p1 earlier. *)

  val step5_shift : Sim.Model.t -> Rat.t array
  (** [(m, 0, ...)]: p0 later. *)

  val matrices : Sim.Model.t -> (string * Rat.t array array) list
  (** Figures 2, 4, 5, 6, 7 in order. *)

  val claims : Sim.Model.t -> claim list
end

(** Theorem 5 (sum bound, [d + m]): the D matrix of Figure 8 and the
    shifted matrix of Figure 10. *)
module Thm5 : sig
  val m : Sim.Model.t -> Rat.t
  val d_matrix : Sim.Model.t -> Rat.t array array
  val shift : Sim.Model.t -> Rat.t array
  (** [(0, m, 0, ...)]: p1 later. *)

  val matrices : Sim.Model.t -> (string * Rat.t array array) list
  val claims : Sim.Model.t -> claim list
  (** @raise Invalid_argument if [n < 3]. *)
end

(** Probing candidate delay matrices — e.g. the matrix of a shrunk
    failing scenario — against the paper's bound tables.  A candidate
    {e witnesses tightness} when it is admissible and some operation
    class's worst observed latency reaches that class's lower bound:
    the shrinking search then produced an adversary as strong as the
    proofs' hand-built shifted executions. *)
module Probe : sig
  type assessment = {
    kind : Spec.Op_kind.t;
    observed : Rat.t;  (** worst latency realized under the candidate *)
    lower : Rat.t option;
        (** the class's Table 1 lower bound ([None] when the theorem's
            preconditions don't hold at this model point) *)
    upper : Rat.t;  (** Algorithm 1's repaired upper bound *)
    meets_lower : bool;  (** [observed >= lower] *)
    within_upper : bool;  (** [observed <= upper] *)
  }

  type report = {
    matrix_admissible : bool;
    assessments : assessment list;
    claims : claim list;
  }

  val assess :
    model:Sim.Model.t ->
    x:Rat.t ->
    matrix:Rat.t array array ->
    observed:(Spec.Op_kind.t * Rat.t) list ->
    report
  (** [observed] pairs each operation class with the worst latency an
      execution under [matrix] realized (a scenario executor's
      [by_kind]). *)

  val witnesses_tightness : report -> bool
  val pp : Format.formatter -> report -> unit
end
