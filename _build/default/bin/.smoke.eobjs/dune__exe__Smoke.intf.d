bin/smoke.mli:
