lib/spec/data_type.pp.mli: Format Op_kind Random
