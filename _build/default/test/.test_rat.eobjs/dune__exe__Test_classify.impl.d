test/test_classify.ml: Alcotest List Printf Spec
