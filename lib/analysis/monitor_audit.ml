(** Pass — monitor_audit: cross-check every declared monitor viewer
    against the sequential specification it claims to observe.

    A data type opts into the O(n log n) linearizability monitors by
    declaring an [Adt_view.viewer]: a shape ([kind]) plus the
    translation between its own invocations/responses and the shape's
    canonical observation vocabulary.  The monitors' soundness leans on
    that declaration being truthful — a queue declaring itself a stack
    would make the monitor reject linearizable histories and accept
    broken ones — so this pass verifies the viewer statically, from the
    sequential semantics alone, before any concurrent history exists:

    - {e discipline}: replaying a canonical insertion sequence through
      [T.apply] and the viewer must exhibit exactly the declared
      shape's removal/observation order (FIFO for queues, LIFO for
      stacks, max-first for priority queues, last-write for registers,
      membership for sets), with every observation landing inside the
      shape's vocabulary;
    - {e classification}: each viewer operation's role must agree with
      the classification witnesses of [Spec.Classify] — the insertion
      must be a discovered mutator, pure observers (peek, has) must be
      discovered accessors and not mutators, destructive observers and
      removals must be discovered mutators.

    Rule ids:
    - [monitor.none] (info) — the type declares no viewer; all of its
      histories go to the Wing-Gong checker;
    - [monitor.vocabulary] (error) — the viewer lacks an operation its
      declared kind's discipline probe requires (a register without a
      read, a container without a take);
    - [monitor.kind-witness] (error) — the canonical sequential replay
      disagrees with the declared discipline; the witness shows the
      invocation sequence with the observed and expected vocabularies;
    - [monitor.classify] (error) — a viewer operation's discovered
      classification contradicts its monitor role;
    - [monitor.verified] (info) — discipline and classification both
      confirm the declared kind. *)

module V = Spec.Adt_view

module Make (T : Spec.Data_type.S) = struct
  module C = Spec.Classify.Make (T)

  let subject = T.name ^ "/monitor"

  let show_invs invs =
    "["
    ^ String.concat "; "
        (List.map (fun i -> Format.asprintf "%a" T.pp_invocation i) invs)
    ^ "]"

  let show_obs l = "[" ^ String.concat "; " (List.map V.obs_to_string l) ^ "]"

  (* Replay canonical invocations from the initial state, collecting
     each step's observation as seen through the viewer. *)
  let replay vw invs =
    let _, acc =
      List.fold_left
        (fun (st, acc) inv ->
          let st', resp = T.apply st inv in
          (st', vw.V.obs inv resp :: acc))
        (T.initial, []) invs
    in
    List.rev acc

  (* The discipline probe: insert 2, 3, 1 and observe.  Which
     observations are expected is exactly what distinguishes the five
     shapes on this one sequence. *)
  let discipline_findings vw =
    let kind = vw.V.kind in
    let missing what =
      [
        Diagnostic.error ~rule:"monitor.vocabulary" ~subject
          (Printf.sprintf "a %s viewer must declare %s"
             (V.kind_to_string kind) what);
      ]
    in
    let probe invs expected =
      let got = replay vw invs in
      if got = expected then []
      else
        [
          Diagnostic.error ~rule:"monitor.kind-witness" ~subject
            ~witness:
              (Printf.sprintf "replaying %s observed %s, expected %s"
                 (show_invs invs) (show_obs got) (show_obs expected))
            (Printf.sprintf
               "sequential replay contradicts the declared %s discipline"
               (V.kind_to_string kind));
        ]
    in
    let puts = List.map vw.V.put [ 2; 3; 1 ] in
    let put_obs = [ V.Put 2; V.Put 3; V.Put 1 ] in
    (* the distinguished element each shape exposes after 2, 3, 1 *)
    let head =
      match kind with
      | V.Register -> 1 (* last write *)
      | V.Queue -> 2 (* first in *)
      | V.Stack -> 1 (* last in *)
      | V.Priority_queue -> 3 (* max *)
      | V.Set -> 0 (* sets have no distinguished element *)
    in
    match kind with
    | V.Register -> (
        match vw.V.peek with
        | None -> missing "a read (peek)"
        | Some peek ->
            probe (puts @ [ peek ]) (put_obs @ [ V.Peek (Some head) ]))
    | V.Set -> (
        match (vw.V.has, vw.V.drop) with
        | None, _ -> missing "a membership test (has)"
        | _, None -> missing "a removal (drop)"
        | Some has, Some drop ->
            probe
              (puts @ [ has 3; has 7; drop 3; has 3 ])
              (put_obs
              @ [ V.Has (3, true); V.Has (7, false); V.Drop 3; V.Has (3, false) ]
              ))
    | V.Queue | V.Stack | V.Priority_queue -> (
        match vw.V.take with
        | None -> missing "a destructive observer (take)"
        | Some take ->
            let takes =
              match kind with
              | V.Queue -> [ 2; 3; 1 ]
              | V.Stack -> [ 1; 3; 2 ]
              | _ -> [ 3; 2; 1 ]
            in
            let peeks, peek_obs =
              match vw.V.peek with
              | None -> ([], [])
              | Some peek -> ([ peek ], [ V.Peek (Some head) ])
            in
            probe
              (puts @ peeks @ [ take; take; take; take ])
              (put_obs @ peek_obs
              @ List.map (fun v -> V.Take (Some v)) takes
              @ [ V.Take None ]))

  (* Classification cross-check: the role the viewer assigns each
     operation implies a classification, which must agree with the one
     the witness searches discover. *)
  let classify_findings u vw =
    let check role inv ~mutator ~pure =
      let op = T.op_of inv in
      let is_m = C.is_mutator u op and is_a = C.is_accessor u op in
      let fail fmt =
        Printf.ksprintf
          (fun message ->
            [
              Diagnostic.error ~rule:"monitor.classify"
                ~subject:(T.name ^ "/" ^ op) message;
            ])
          fmt
      in
      if mutator && not is_m then
        fail "the viewer's %s must be a mutator, but no mutation witness \
              exists in the explored universe" role
      else if pure && is_m then
        fail "the viewer's %s must be a pure observer, but a mutation \
              witness exists" role
      else if pure && not is_a then
        fail "the viewer's %s must be an accessor, but no accessor witness \
              exists in the explored universe" role
      else []
    in
    check "insertion (put)" (vw.V.put 1) ~mutator:true ~pure:false
    @ (match vw.V.take with
      | Some take -> check "destructive observer (take)" take ~mutator:true ~pure:false
      | None -> [])
    @ (match vw.V.peek with
      | Some peek -> check "observer (peek)" peek ~mutator:false ~pure:true
      | None -> [])
    @ (match vw.V.has with
      | Some has -> check "membership test (has)" (has 1) ~mutator:false ~pure:true
      | None -> [])
    @
    match vw.V.drop with
    | Some drop -> check "removal (drop)" (drop 1) ~mutator:true ~pure:false
    | None -> []

  let run ?(extra = []) () =
    match T.monitor with
    | None ->
        [
          Diagnostic.info ~rule:"monitor.none" ~subject
            "no declared monitor viewer; every history of this type is \
             checked by Wing-Gong";
        ]
    | Some vw -> (
        let u = C.default_universe ~extra () in
        match discipline_findings vw @ classify_findings u vw with
        | [] ->
            [
              Diagnostic.info ~rule:"monitor.verified" ~subject
                (Printf.sprintf
                   "declared %s monitor confirmed by sequential discipline \
                    replay and classification witnesses"
                   (V.kind_to_string vw.V.kind));
            ]
        | findings -> findings)
end
