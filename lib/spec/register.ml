(** Read/write register over integers (paper §2.1's running example).

    [read] returns the value written by the latest preceding [write],
    or the initial value [0].  [write] is the textbook pure mutator —
    in fact an {e overwriter} — and [read] the textbook pure
    accessor. *)

type state = int [@@deriving show { with_path = false }, eq]

type invocation = Read | Write of int
[@@deriving show { with_path = false }, eq]

type response = Value of int | Ack [@@deriving show { with_path = false }, eq]

let name = "register"
let initial = 0

let apply state = function
  | Read -> (state, Value state)
  | Write v -> (v, Ack)

let op_of = function Read -> "read" | Write _ -> "write"

let operations =
  [ ("read", Op_kind.Pure_accessor); ("write", Op_kind.Pure_mutator) ]

let equal_state = equal_state
let equal_invocation = equal_invocation
let equal_response = equal_response
let show_state = show_state

let sample_invocations = function
  | "read" -> [ Read ]
  | "write" -> [ Write 1; Write 2; Write 3; Write 4 ]
  | op -> invalid_arg ("register: unknown operation " ^ op)

let gen_invocation rng =
  if Random.State.bool rng then Read else Write (Random.State.int rng 10)

(* [tag + 1]: value 0 is the initial register content, and a history
   that both reads and writes 0 is ambiguous to the monitor. *)
let gen_tagged rng ~tag =
  if Random.State.bool rng then Read else Write (tag + 1)

let monitor =
  Some
    {
      Adt_view.kind = Adt_view.Register;
      obs =
        (fun inv resp ->
          match (inv, resp) with
          | Write v, Ack -> Adt_view.Put v
          | Read, Value v -> Adt_view.Peek (Some v)
          | Write _, Value _ | Read, Ack -> Adt_view.Opaque);
      put = (fun v -> Write v);
      take = None;
      peek = Some Read;
      has = None;
      drop = None;
    }
