(* Tests for run traces: recording, operation extraction, delays. *)

let rat = Rat.make
let model = Sim.Model.make ~n:3 ~d:(rat 10 1) ~u:(rat 4 1) ~eps:(rat 2 1)

type msg = M of int

let record_sample (t : (msg, string, int) Sim.Trace.t) =
  Sim.Trace.record t (Invoke { time = Rat.zero; proc = 0; inv = "write" });
  Sim.Trace.record t
    (Send { time = Rat.zero; src = 0; dst = 1; seq = 0; delay = rat 8 1; msg = M 1 });
  Sim.Trace.record t
    (Timer_set { time = Rat.zero; proc = 0; id = 0; expiry = rat 5 1 });
  Sim.Trace.record t (Invoke { time = rat 1 1; proc = 1; inv = "read" });
  Sim.Trace.record t (Respond { time = rat 3 1; proc = 1; inv = "read"; resp = 7 });
  Sim.Trace.record t (Timer_fire { time = rat 5 1; proc = 0; id = 0 });
  Sim.Trace.record t (Respond { time = rat 5 1; proc = 0; inv = "write"; resp = 0 });
  Sim.Trace.record t (Deliver { time = rat 8 1; src = 0; dst = 1; msg = M 1 })

let sample_trace () =
  let t : (msg, string, int) Sim.Trace.t = Sim.Trace.create () in
  record_sample t;
  t

let test_operations () =
  let ops = Sim.Trace.operations (sample_trace ()) in
  Alcotest.(check int) "two operations" 2 (List.length ops);
  (* Sorted by invocation time. *)
  let first = List.hd ops in
  Alcotest.(check string) "first op is write" "write" first.inv;
  Alcotest.(check int) "first proc" 0 first.proc;
  Alcotest.(check string) "write latency 5" "5"
    (Rat.to_string (Rat.sub first.resp_time first.inv_time));
  let second = List.nth ops 1 in
  Alcotest.(check string) "second op" "read" second.inv;
  Alcotest.(check int) "read response" 7 second.resp

let test_pending () =
  let t : (msg, string, int) Sim.Trace.t = Sim.Trace.create () in
  Sim.Trace.record t (Invoke { time = Rat.zero; proc = 2; inv = "dangling" });
  Alcotest.(check int) "no completed ops" 0 (Sim.Trace.operation_count t);
  Alcotest.(check (list (pair int string)))
    "pending invocation" [ (2, "dangling") ]
    (Sim.Trace.pending_invocations t)

let test_overlap_rejected () =
  let t : (msg, string, int) Sim.Trace.t = Sim.Trace.create () in
  Sim.Trace.record t (Invoke { time = Rat.zero; proc = 0; inv = "a" });
  Sim.Trace.record t (Invoke { time = Rat.one; proc = 0; inv = "b" });
  Alcotest.check_raises "overlapping invocations"
    (Invalid_argument "Trace.operations: overlapping invocations at a process")
    (fun () -> ignore (Sim.Trace.operations t));
  let t2 : (msg, string, int) Sim.Trace.t = Sim.Trace.create () in
  Sim.Trace.record t2 (Respond { time = Rat.zero; proc = 0; inv = "a"; resp = 1 });
  Alcotest.check_raises "response without invocation"
    (Invalid_argument "Trace.operations: response without invocation")
    (fun () -> ignore (Sim.Trace.operations t2))

let test_delays () =
  let t = sample_trace () in
  Alcotest.(check int) "one message" 1 (List.length (Sim.Trace.message_delays t));
  Alcotest.(check bool) "delay 8 admissible" true
    (Sim.Trace.delays_admissible model t);
  let bad : (msg, string, int) Sim.Trace.t = Sim.Trace.create () in
  Sim.Trace.record bad
    (Send { time = Rat.zero; src = 0; dst = 1; seq = 0; delay = rat 11 1; msg = M 0 });
  Alcotest.(check bool) "delay 11 > d inadmissible" false
    (Sim.Trace.delays_admissible model bad)

let test_last_time () =
  Alcotest.(check string) "empty trace last time 0" "0"
    (Rat.to_string (Sim.Trace.last_time (Sim.Trace.create ())));
  Alcotest.(check string) "sample last time 8" "8"
    (Rat.to_string (Sim.Trace.last_time (sample_trace ())))

let test_of_events_roundtrip () =
  let t = sample_trace () in
  let rebuilt = Sim.Trace.of_events (Sim.Trace.events t) in
  Alcotest.(check int) "same event count"
    (List.length (Sim.Trace.events t))
    (List.length (Sim.Trace.events rebuilt));
  Alcotest.(check int) "same op count" (Sim.Trace.operation_count t)
    (Sim.Trace.operation_count rebuilt)

let test_counters () =
  let t = sample_trace () in
  Alcotest.(check int) "event count" 8 (Sim.Trace.event_count t);
  Alcotest.(check int) "send count" 1 (Sim.Trace.send_count t);
  Alcotest.(check int) "deliver count" 1 (Sim.Trace.deliver_count t);
  Alcotest.(check int) "operation count" 2 (Sim.Trace.operation_count t);
  Alcotest.(check int) "pending count" 0 (Sim.Trace.pending_count t);
  Alcotest.(check int) "counts match retained list" 8
    (List.length (Sim.Trace.events t))

let test_retention_off () =
  let t : (msg, string, int) Sim.Trace.t =
    Sim.Trace.create ~retain_events:false ()
  in
  record_sample t;
  Alcotest.(check bool) "retains_events false" false
    (Sim.Trace.retains_events t);
  Alcotest.check_raises "events raises"
    (Invalid_argument "Trace.events: event retention is disabled") (fun () ->
      ignore (Sim.Trace.events t));
  (* Everything built by the streaming sinks still works. *)
  Alcotest.(check int) "event count" 8 (Sim.Trace.event_count t);
  Alcotest.(check int) "send count" 1 (Sim.Trace.send_count t);
  Alcotest.(check int) "operation count" 2 (Sim.Trace.operation_count t);
  Alcotest.(check bool) "delays admissible (envelope)" true
    (Sim.Trace.delays_admissible model t);
  let retained_ops = Sim.Trace.operations (sample_trace ()) in
  Alcotest.(check bool) "operations identical to retained run" true
    (Sim.Trace.operations t = retained_ops);
  Alcotest.(check string) "last_time still tracked" "8"
    (Rat.to_string (Sim.Trace.last_time t))

let test_custom_sink () =
  let t : (msg, string, int) Sim.Trace.t =
    Sim.Trace.create ~retain_events:false ()
  in
  let seen = ref [] in
  Sim.Trace.add_sink t
    { name = "collector"; on_event = (fun e -> seen := e :: !seen) };
  record_sample t;
  Alcotest.(check int) "sink saw every event" 8 (List.length !seen);
  (match List.rev !seen with
  | Sim.Trace.Invoke { proc = 0; inv = "write"; _ } :: _ -> ()
  | _ -> Alcotest.fail "sink events out of order");
  let ops = ref [] in
  let t2 : (msg, string, int) Sim.Trace.t =
    Sim.Trace.create ~retain_events:false ()
  in
  Sim.Trace.on_operation t2 (fun op -> ops := op :: !ops);
  record_sample t2;
  Alcotest.(check int) "operation observer fired twice" 2 (List.length !ops);
  (* Observers fire at response time: "read" (t=3) before "write" (t=5). *)
  match List.rev !ops with
  | [ first; second ] ->
      Alcotest.(check string) "first completion" "read" first.Sim.Trace.inv;
      Alcotest.(check string) "second completion" "write" second.Sim.Trace.inv
  | _ -> Alcotest.fail "expected exactly two completions"

let test_monitor () =
  let t : (msg, string, int) Sim.Trace.t =
    Sim.Trace.create ~retain_events:false ~monitor:model ()
  in
  record_sample t;
  Alcotest.(check bool) "no violation on admissible run" true
    (Sim.Trace.first_inadmissible t = None);
  Sim.Trace.record t
    (Send { time = rat 9 1; src = 2; dst = 0; seq = 0; delay = rat 11 1; msg = M 9 });
  (match Sim.Trace.first_inadmissible t with
  | Some v ->
      Alcotest.(check string) "violating delay" "11" (Rat.to_string v.delay);
      Alcotest.(check int) "violating src" 2 v.src
  | None -> Alcotest.fail "monitor missed the inadmissible delay");
  Alcotest.(check bool) "envelope check agrees" false
    (Sim.Trace.delays_admissible model t)

let () =
  Alcotest.run "trace"
    [
      ( "trace",
        [
          Alcotest.test_case "operation extraction" `Quick test_operations;
          Alcotest.test_case "pending invocations" `Quick test_pending;
          Alcotest.test_case "ill-formed histories rejected" `Quick
            test_overlap_rejected;
          Alcotest.test_case "message delays" `Quick test_delays;
          Alcotest.test_case "last_time" `Quick test_last_time;
          Alcotest.test_case "of_events roundtrip" `Quick
            test_of_events_roundtrip;
          Alcotest.test_case "streaming counters" `Quick test_counters;
          Alcotest.test_case "retention off" `Quick test_retention_off;
          Alcotest.test_case "custom sinks and observers" `Quick
            test_custom_sink;
          Alcotest.test_case "admissibility monitor" `Quick test_monitor;
        ] );
    ]
