test/test_auto_stress.ml: Alcotest Bounds List Printf Rat Sim Spec
