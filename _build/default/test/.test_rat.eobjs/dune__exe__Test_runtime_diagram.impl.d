test/test_runtime_diagram.ml: Alcotest Bounds Core Format Fun List Rat Sim Spec String
