(** The coarse classification used by the paper's algorithm (§5.1):
    every operation of a data type is a pure accessor ([AOP]), a pure
    mutator ([MOP]), or both an accessor and a mutator ([OOP]). *)

type t =
  | Pure_accessor  (** observes the state without changing it *)
  | Pure_mutator  (** changes the state without revealing it *)
  | Mixed  (** both accesses and mutates (the paper's [OOP]) *)
[@@deriving show { with_path = false }, eq]

let is_accessor = function Pure_accessor | Mixed -> true | Pure_mutator -> false
let is_mutator = function Pure_mutator | Mixed -> true | Pure_accessor -> false

let to_string = function
  | Pure_accessor -> "pure accessor"
  | Pure_mutator -> "pure mutator"
  | Mixed -> "accessor+mutator"

let pp ppf t = Format.pp_print_string ppf (to_string t)
