(** Folklore baseline 1 (paper §1): the centralized algorithm.

    Every invocation is forwarded to the distinguished process [p_0],
    which applies it to the single authoritative copy in arrival order
    and replies.  Linearization order = application order at [p_0];
    each operation takes up to [2d] (request + reply), and operations
    invoked at [p_0] itself are free. *)

module Make (T : Spec.Data_type.S) : sig
  type msg
  type tag
  type engine = (msg, tag, T.invocation, T.response) Sim.Engine.t

  type t = { engine : engine; mutable master : T.state }

  val coordinator : int
  (** Process id of the distinguished process (0). *)

  val create :
    ?retain_events:bool ->
    model:Sim.Model.t ->
    offsets:Rat.t array ->
    delay:Sim.Net.t ->
    unit ->
    t
end
