/* Monotonic clock and (optional) hardware instruction counter.
 *
 * The monotonic clock backs bench timing: unlike gettimeofday it never
 * jumps when NTP or a human adjusts the wall clock mid-run.
 *
 * The instruction counter uses perf_event_open counting
 * PERF_COUNT_HW_INSTRUCTIONS for this process in user mode.  Many
 * environments (containers, VMs without PMU virtualisation, hardened
 * kernels) refuse the syscall; callers must treat a negative fd from
 * repro_perf_open as "unavailable" and fall back to allocation
 * metrics, which the OCaml side does.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/fail.h>

#include <time.h>
#include <string.h>

CAMLprim value repro_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    caml_failwith("clock_gettime(CLOCK_MONOTONIC)");
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}

#if defined(__linux__)

#include <unistd.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <linux/perf_event.h>

CAMLprim value repro_perf_open(value unit)
{
  struct perf_event_attr attr;
  long fd;
  (void)unit;
  memset(&attr, 0, sizeof attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof attr;
  attr.config = PERF_COUNT_HW_INSTRUCTIONS;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  fd = syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0);
  return Val_long(fd < 0 ? -1 : fd);
}

CAMLprim value repro_perf_start(value vfd)
{
  int fd = Int_val(vfd);
  ioctl(fd, PERF_EVENT_IOC_RESET, 0);
  ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  return Val_unit;
}

CAMLprim value repro_perf_stop(value vfd)
{
  int fd = Int_val(vfd);
  long long count = -1;
  ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  if (read(fd, &count, sizeof count) != sizeof count)
    count = -1;
  return caml_copy_int64(count);
}

#else /* not __linux__: counter never available */

CAMLprim value repro_perf_open(value unit)
{
  (void)unit;
  return Val_long(-1);
}

CAMLprim value repro_perf_start(value vfd)
{
  (void)vfd;
  return Val_unit;
}

CAMLprim value repro_perf_stop(value vfd)
{
  (void)vfd;
  return caml_copy_int64(-1);
}

#endif
