(** Read/write register over integers (paper §2.1's running example).

    [read] returns the value written by the latest preceding [write]
    (initially [0]).  [write] is the textbook pure mutator — in fact an
    overwriter — and [read] the textbook pure accessor. *)

type state = int
type invocation = Read | Write of int
type response = Value of int | Ack

include
  Data_type.S
    with type state := state
     and type invocation := invocation
     and type response := response
