(* Shared-spool campaign execution: N worker processes split one grid.

   Layout of a spool directory:

     MANIFEST             grid fingerprint, created atomically once;
                          every worker and the merge validate it so
                          two different grids can never share a spool
     leases/c000042.lease link(2)-claimed, mtime-heartbeated (Lease)
     done/c000042.done    tmp+rename marker: cell journaled durably
     journals/W.journal   per-worker Journal of (verdict|diag) records

   A worker scans the cell index in order, claims un-done cells one at
   a time, evaluates, journals + fsyncs, writes the done marker, and
   releases the lease; when a full pass finds nothing claimable it
   polls until every done marker exists (other workers still own
   leases) or it is stopped.  A cell whose worker died mid-flight is
   recovered by stale-lease takeover; because cells are deterministic
   and journal replay is last-record-wins, the duplicate execution a
   takeover can cause is harmless.

   [merge] loads every journal, requires each cell to have a record
   with a matching input fingerprint, and assembles the campaign
   through the same exact-merge executor a single process uses — so
   the merged fingerprint is byte-identical to a non-spool run. *)

let manifest_name = "MANIFEST"
let cell_name i = Printf.sprintf "c%06d" i

let grid_fingerprint grid =
  let cells = Engine.cells grid in
  let buf = Buffer.create 1024 in
  List.iter
    (fun c ->
      Buffer.add_string buf (Engine.cell_key grid c);
      Buffer.add_char buf '\n')
    cells;
  Printf.sprintf "cells=%d;fp=%08x" (List.length cells)
    (Engine.fnv1a (Buffer.contents buf))

let init ~dir grid =
  Journal.mkdir_p dir;
  List.iter
    (fun d -> Journal.mkdir_p (Filename.concat dir d))
    [ "leases"; "journals"; "done" ];
  let manifest = Filename.concat dir manifest_name in
  let want = grid_fingerprint grid ^ "\n" in
  let tmp = Filename.concat dir (Printf.sprintf ".manifest.%d" (Unix.getpid ())) in
  let oc = open_out tmp in
  output_string oc want;
  close_out oc;
  let created =
    match Unix.link tmp manifest with
    | () -> true
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false
  in
  (try Sys.remove tmp with Sys_error _ -> ());
  if created then Ok ()
  else
    let ic = open_in_bin manifest in
    let got =
      try really_input_string ic (in_channel_length ic) with _ -> ""
    in
    close_in ic;
    if got = want then Ok ()
    else
      Error
        (Printf.sprintf
           "spool %s holds a different campaign (MANIFEST %s, this grid %s)"
           dir (String.trim got) (String.trim want))

let done_path ~dir i =
  Filename.concat (Filename.concat dir "done") (cell_name i ^ ".done")

let status ~dir grid =
  match init ~dir grid with
  | Error _ as e -> e
  | Ok () ->
      let n = List.length (Engine.cells grid) in
      let d = ref 0 in
      for i = 0 to n - 1 do
        if Sys.file_exists (done_path ~dir i) then incr d
      done;
      Ok (!d, n)

type worker_report = {
  worker : string;
  completed : int;  (** cells this worker evaluated and journaled *)
  failed : int;  (** of those, cells that produced a diagnostic *)
  takeovers : int;  (** stale leases evicted *)
  interrupted : bool;
}

let default_worker_id () =
  Printf.sprintf "%s-%d" (Unix.gethostname ()) (Unix.getpid ())

let worker ?worker_id ?retry ?should_stop ?(sync_every = 1)
    ?(lease_ttl_s = 60.0) ?(poll_s = 0.25) ?code_fp ~dir grid =
  match init ~dir grid with
  | Error _ as e -> e
  | Ok () ->
      let owner =
        match worker_id with Some w -> w | None -> default_worker_id ()
      in
      let cells = Array.of_list (Engine.cells grid) in
      let n = Array.length cells in
      let leases = Filename.concat dir "leases" in
      let done_dir = Filename.concat dir "done" in
      let jpath =
        Filename.concat (Filename.concat dir "journals") (owner ^ ".journal")
      in
      let w =
        Journal.writer ~sync_every ~path:jpath ~fp:(Engine.journal_header ())
          ()
      in
      let stopped () =
        match should_stop with Some f -> f () | None -> false
      in
      let completed = ref 0 and failed = ref 0 and takeovers = ref 0 in
      let progress = ref false in
      let mark_done i =
        let tmp =
          Filename.concat done_dir (Printf.sprintf ".%s.%s" owner (cell_name i))
        in
        let oc = open_out tmp in
        output_string oc (owner ^ "\n");
        close_out oc;
        (* rename, not link: markers are idempotent (a takeover may
           write one that a slow first owner rewrites) — last write
           wins and both say "this cell is journaled somewhere". *)
        Unix.rename tmp (done_path ~dir i)
      in
      let run_cell i lease =
        (* Heartbeat from a side domain so a multi-minute cell does not
           look dead to other workers; the sleep is chopped fine so the
           join after the cell costs at most ~50 ms. *)
        let hb_stop = Atomic.make false in
        let hb =
          Domain.spawn (fun () ->
              let interval = Float.max 0.05 (lease_ttl_s /. 4.0) in
              while not (Atomic.get hb_stop) do
                Lease.renew lease;
                let slept = ref 0.0 in
                while (not (Atomic.get hb_stop)) && !slept < interval do
                  Unix.sleepf 0.05;
                  slept := !slept +. 0.05
                done
              done)
        in
        Fun.protect
          ~finally:(fun () ->
            Atomic.set hb_stop true;
            Domain.join hb;
            Lease.release lease)
          (fun () ->
            let c = cells.(i) in
            let r, _attempts = Engine.eval_with_retry ?retry grid c in
            Journal.append w ~key:(Engine.cell_key grid c)
              ~input_fp:(Engine.input_fingerprint ?code_fp grid c)
              r;
            Journal.flush w;
            incr completed;
            (match r with Error _ -> incr failed | Ok _ -> ());
            mark_done i)
      in
      let try_cell i =
        if not (Sys.file_exists (done_path ~dir i)) then
          match Lease.claim ~dir:leases ~owner ~ttl_s:lease_ttl_s (cell_name i) with
          | Lease.Held -> ()
          | Lease.Acquired lease ->
              progress := true;
              if Sys.file_exists (done_path ~dir i) then Lease.release lease
              else run_cell i lease
          | Lease.Taken_over lease ->
              incr takeovers;
              progress := true;
              if Sys.file_exists (done_path ~dir i) then Lease.release lease
              else run_cell i lease
      in
      let all_done () =
        let rec go i =
          i >= n || (Sys.file_exists (done_path ~dir i) && go (i + 1))
        in
        go 0
      in
      Fun.protect
        ~finally:(fun () -> Journal.close w)
        (fun () ->
          let rec passes () =
            if (not (stopped ())) && not (all_done ()) then begin
              progress := false;
              let i = ref 0 in
              while !i < n && not (stopped ()) do
                try_cell !i;
                incr i
              done;
              if (not (stopped ())) && not (all_done ()) then begin
                if not !progress then Unix.sleepf poll_s;
                passes ()
              end
            end
          in
          passes ();
          Ok
            {
              worker = owner;
              completed = !completed;
              failed = !failed;
              takeovers = !takeovers;
              interrupted = stopped ();
            })

let merge ?code_fp ~dir grid =
  match init ~dir grid with
  | Error _ as e -> e
  | Ok () ->
      let cells = Array.of_list (Engine.cells grid) in
      let n = Array.length cells in
      let jdir = Filename.concat dir "journals" in
      let files =
        Sys.readdir jdir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".journal")
        |> List.sort compare
      in
      let tbl = Hashtbl.create (2 * n) in
      let diags = ref [] in
      List.iter
        (fun f ->
          let path = Filename.concat jdir f in
          let records, ds =
            (Journal.load ~path ~fp:(Engine.journal_header ())
              : (Engine.verdict, string) result Journal.record list * _)
          in
          diags :=
            !diags
            @ List.map
                (fun d -> f ^ ": " ^ Journal.diagnostic_to_string d)
                ds;
          List.iter
            (fun (r : _ Journal.record) -> Hashtbl.replace tbl r.Journal.key r)
            records)
        files;
      let prefill = Array.make n None in
      let missing = ref 0 in
      Array.iteri
        (fun i c ->
          match Hashtbl.find_opt tbl (Engine.cell_key grid c) with
          | Some (r : _ Journal.record)
            when r.Journal.input_fp = Engine.input_fingerprint ?code_fp grid c
            ->
              prefill.(i) <- Some r.Journal.payload
          | _ -> incr missing)
        cells;
      if !missing > 0 then
        Error
          (Printf.sprintf
             "spool %s: %d of %d cells not yet journaled (run more workers, \
              then --merge)"
             dir !missing n)
      else
        Ok
          (Engine.execute ~jobs:1 ~fail_fast:false ~prefill
             ~resume0:
               {
                 Engine.no_resume with
                 Engine.replayed = n;
                 journal_diagnostics = !diags;
               }
             grid cells)
