type spec =
  | Drop of { p : float; edges : edges }
  | Duplicate of { p : float; edges : edges }
  | Spike of { p : float; edges : edges; margin : Rat.t; below : bool }
  | Crash of { proc : int; at : Rat.t }
  | Skew of { proc : int; offset : Rat.t }

and edges = All | Edges of (int * int) list

type plan = { seed : int; specs : spec list }

let none = { seed = 0; specs = [] }
let is_none plan = plan.specs = []
let plan ?(seed = 0) specs = { seed; specs }

(* Concatenation keeps both plans' specs (left first); the seed mix is
   an arbitrary fixed injection so that composing distinct plans yields
   a distinct — but still deterministic — fault stream. *)
let compose a b = { seed = (a.seed * 31) lxor b.seed; specs = a.specs @ b.specs }

let check_p p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg "Fault: probability must lie in [0, 1]"

let drops ?(edges = All) p =
  check_p p;
  Drop { p; edges }

let duplicates ?(edges = All) p =
  check_p p;
  Duplicate { p; edges }

let spikes ?(edges = All) ?(below = false) ~margin p =
  check_p p;
  if Rat.sign margin <= 0 then
    invalid_arg "Fault.spikes: margin must be positive";
  Spike { p; edges; margin; below }

let crash ~proc ~at = Crash { proc; at }
let skew ~proc ~offset = Skew { proc; offset }

type kind =
  | Dropped of { src : int; dst : int; seq : int }
  | Duplicated of { src : int; dst : int; seq : int }
  | Spiked of { src : int; dst : int; seq : int; delay : Rat.t }
  | Crashed of { proc : int; at : Rat.t }
  | Skewed of { proc : int; offset : Rat.t }

let pp_kind ppf = function
  | Dropped { src; dst; seq } ->
      Format.fprintf ppf "dropped %d->%d #%d" src dst seq
  | Duplicated { src; dst; seq } ->
      Format.fprintf ppf "duplicated %d->%d #%d" src dst seq
  | Spiked { src; dst; seq; delay } ->
      Format.fprintf ppf "delay spike %d->%d #%d (%a)" src dst seq Rat.pp delay
  | Crashed { proc; at } -> Format.fprintf ppf "crashed p%d@%a" proc Rat.pp at
  | Skewed { proc; offset } ->
      Format.fprintf ppf "clock skew p%d by %a" proc Rat.pp offset

let on_edge edges ~src ~dst =
  match edges with All -> true | Edges list -> List.mem (src, dst) list

let crash_time plan ~proc =
  List.fold_left
    (fun acc spec ->
      match spec with
      | Crash { proc = p; at } when p = proc -> (
          match acc with
          | None -> Some at
          | Some earlier -> Some (Rat.min earlier at))
      | _ -> acc)
    None plan.specs

let skew_offsets plan ~n =
  let offsets = Array.make n Rat.zero in
  List.iter
    (function
      | Skew { proc; offset } when proc >= 0 && proc < n ->
          offsets.(proc) <- Rat.add offsets.(proc) offset
      | _ -> ())
    plan.specs;
  offsets

(* Spread of the perturbations, always counting 0 (unperturbed
   processes exist in any model with n >= 2 unless every process is
   listed; including 0 errs on the safe, wider side). *)
let extra_skew plan =
  let lo = ref Rat.zero and hi = ref Rat.zero in
  List.iter
    (function
      | Skew { offset; _ } ->
          if Rat.lt offset !lo then lo := offset;
          if Rat.gt offset !hi then hi := offset
      | _ -> ())
    plan.specs;
  Rat.sub !hi !lo

let max_spike plan =
  List.fold_left
    (fun acc spec ->
      match spec with
      | Spike { margin; below = false; _ } -> Rat.max acc margin
      | _ -> acc)
    Rat.zero plan.specs

let describe plan =
  let edge_str = function
    | All -> "all"
    | Edges list ->
        String.concat ","
          (List.map (fun (s, d) -> Printf.sprintf "%d->%d" s d) list)
  in
  let spec_str = function
    | Drop { p; edges } -> Printf.sprintf "drop(%g,%s)" p (edge_str edges)
    | Duplicate { p; edges } -> Printf.sprintf "dup(%g,%s)" p (edge_str edges)
    | Spike { p; edges; margin; below } ->
        Printf.sprintf "spike(%g,%s,%s%s)" p (edge_str edges)
          (if below then "-" else "+")
          (Rat.to_string margin)
    | Crash { proc; at } -> Printf.sprintf "crash(p%d@%s)" proc (Rat.to_string at)
    | Skew { proc; offset } ->
        Printf.sprintf "skew(p%d,%s)" proc (Rat.to_string offset)
  in
  String.concat " "
    (Printf.sprintf "seed=%d" plan.seed :: List.map spec_str plan.specs)

type injector = {
  spec : plan;
  model : Model.t;
  rng : Random.State.t;
}

let instantiate plan ~model =
  { spec = plan; model; rng = Random.State.make [| plan.seed; 0x5eed |] }

let roll t p = p > 0. && Random.State.float t.rng 1.0 < p

(* Every probabilistic spec is rolled on every transmission, in plan
   order, so the RNG stream consumed per send depends only on the plan
   — never on which faults happened to trigger.  Determinism therefore
   survives plan-behavioural changes downstream (e.g. a retransmission
   rolling fresh faults). *)
let on_send t ~src ~dst ~seq ~delay =
  let dropped = ref false in
  let duplicated = ref false in
  let spiked = ref None in
  List.iter
    (fun spec ->
      match spec with
      | Drop { p; edges } ->
          let hit = roll t p in
          if hit && on_edge edges ~src ~dst then dropped := true
      | Duplicate { p; edges } ->
          let hit = roll t p in
          if hit && on_edge edges ~src ~dst then duplicated := true
      | Spike { p; edges; margin; below } ->
          let hit = roll t p in
          if hit && on_edge edges ~src ~dst && !spiked = None then
            (* Relative to the sampled delay, not the model: the same
               plan must stay meaningful when the run is judged against
               an inflated recovery model. *)
            spiked :=
              Some
                (if below then Rat.max Rat.zero (Rat.sub delay margin)
                 else Rat.add delay margin)
      | Crash _ | Skew _ -> ())
    t.spec.specs;
  if !dropped then ([], [ Dropped { src; dst; seq } ])
  else
    let delay, spike_faults =
      match !spiked with
      | None -> (delay, [])
      | Some delay' -> (delay', [ Spiked { src; dst; seq; delay = delay' } ])
    in
    if !duplicated then
      ([ delay; delay ], spike_faults @ [ Duplicated { src; dst; seq } ])
    else ([ delay ], spike_faults)

let injector_crash_time t ~proc = crash_time t.spec ~proc
let injector_skew t ~proc =
  (skew_offsets t.spec ~n:t.model.n).(proc)
