(* Fixed domain pool over an indexed work queue.

   The queue is an atomic cursor into [0 .. n-1]: each worker claims
   the next unclaimed index with [fetch_and_add], evaluates it, and
   writes the outcome into its own slot of the results array — distinct
   slots, so no synchronization beyond the final [Domain.join] (which
   establishes the happens-before edge the main domain needs to read
   the array).  The queue is bounded by construction: at most [jobs]
   cells are in flight, nothing is buffered.

   Cancellation ([fail_fast]): the first [Error] (or escaped exception)
   raises a shared stop flag; workers re-check the flag before claiming
   the next index, so in-flight cells complete and are reported while
   unclaimed cells are left [Skipped] — a prompt stop with no lost
   reports.  [should_stop] is the same mechanism driven from outside
   (SIGINT, a deadline, a test harness): polled before each claim, so a
   stop request drains in-flight cells and never loses a report.

   Determinism: a worker's behaviour depends only on the index it
   claims (callers derive any randomness from the cell's coordinates,
   never from [Domain.self ()]), so the outcome array is identical for
   any [jobs] count; only the partition of indices across domains — and
   therefore the content of each domain-local state — varies.  With
   [jobs = 1] everything runs inline on the calling domain. *)

type 'a outcome = Done of 'a | Failed of string | Skipped

let outcome_ok = function Done _ -> true | Failed _ | Skipped -> false

let map (type l r) ?should_stop ~jobs ~fail_fast ~n ~(init : unit -> l)
    (f : l -> int -> (r, string) result) : r outcome array * l list =
  let jobs = if jobs < 1 then 1 else jobs in
  let externally_stopped =
    match should_stop with None -> fun () -> false | Some f -> f
  in
  let results = Array.make n Skipped in
  let next = Atomic.make 0 in
  let stop = Atomic.make false in
  let worker () =
    let local = init () in
    let rec loop () =
      if (not (Atomic.get stop)) && not (externally_stopped ()) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f local i with
          | Ok v -> results.(i) <- Done v
          | Error msg ->
              results.(i) <- Failed msg;
              if fail_fast then Atomic.set stop true
          | exception exn ->
              results.(i) <- Failed (Printexc.to_string exn);
              if fail_fast then Atomic.set stop true);
          loop ()
        end
      end
    in
    loop ();
    local
  in
  if jobs = 1 then (results, [ worker () ])
  else
    let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
    (results, Array.to_list (Array.map Domain.join domains))

(* Process-wide graceful-shutdown flag wired to SIGINT/SIGTERM.

   The handler only flips an atomic — safe from a signal context — and
   then restores the default disposition so a second signal kills the
   process the usual way (an escape hatch if draining wedges).  Pool
   workers observe the flag through [should_stop]; the campaign layer
   flushes its journal and exits nonzero with a resume hint. *)
module Interrupt = struct
  let flag = Atomic.make false
  let requested () = Atomic.get flag
  let request () = Atomic.set flag true
  let reset () = Atomic.set flag false

  let install () =
    let handle signal (_ : int) =
      Atomic.set flag true;
      try Sys.set_signal signal Sys.Signal_default with _ -> ()
    in
    List.iter
      (fun signal ->
        try Sys.set_signal signal (Sys.Signal_handle (handle signal))
        with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigint; Sys.sigterm ]
end
