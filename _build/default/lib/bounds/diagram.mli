(** ASCII run diagrams (Figure 1 and the §4 figures' run sketches):
    per-process timelines with labelled operation intervals, scaled to
    a fixed character width. *)

type interval = { proc : int; label : string; start : Rat.t; finish : Rat.t }

val interval : proc:int -> label:string -> start:Rat.t -> finish:Rat.t -> interval

val of_operations :
  label:('inv -> string) ->
  ('inv, 'resp) Sim.Trace.operation list ->
  interval list

val render : ?width:int -> n:int -> interval list -> string
(** One row per process (plus a time-scale line); labels are inscribed
    inside their interval when they fit, otherwise placed on an
    annotation line below. *)
