(** Max-priority queue over integers (multiset semantics).

    [insert v] adds an element — a pure mutator that {e commutes}
    (the final multiset does not depend on insertion order), so unlike
    queue/stack/tree mutators it is not last-sensitive and only the
    generic [u/2]-style bounds apply to it; [extract_max] removes and
    returns the maximum (mixed, pair-free); [find_max] observes it
    (pure accessor).

    The paper's §6.2 notes that relaxing determinism ("extract an
    arbitrary element") might allow faster operations; [extract_max]
    is the deterministic comparison point. *)

type state = int list (* multiset, kept descending *)
[@@deriving show { with_path = false }, eq]

type invocation = Insert of int | Extract_max | Find_max
[@@deriving show { with_path = false }, eq]

type response = Ack | Max of int option
[@@deriving show { with_path = false }, eq]

let name = "priority-queue"
let initial = []

let rec insert_desc v = function
  | [] -> [ v ]
  | x :: rest -> if v >= x then v :: x :: rest else x :: insert_desc v rest

let apply state = function
  | Insert v -> (insert_desc v state, Ack)
  | Extract_max -> (
      match state with
      | [] -> ([], Max None)
      | top :: rest -> (rest, Max (Some top)))
  | Find_max -> (
      match state with
      | [] -> (state, Max None)
      | top :: _ -> (state, Max (Some top)))

let op_of = function
  | Insert _ -> "insert"
  | Extract_max -> "extract-max"
  | Find_max -> "find-max"

let operations =
  [
    ("insert", Op_kind.Pure_mutator);
    ("extract-max", Op_kind.Mixed);
    ("find-max", Op_kind.Pure_accessor);
  ]

let equal_state = equal_state
let equal_invocation = equal_invocation
let equal_response = equal_response
let show_state = show_state

let sample_invocations = function
  | "insert" -> [ Insert 1; Insert 2; Insert 3; Insert 4 ]
  | "extract-max" -> [ Extract_max ]
  | "find-max" -> [ Find_max ]
  | op -> invalid_arg ("priority-queue: unknown operation " ^ op)

let gen_invocation rng =
  match Random.State.int rng 4 with
  | 0 | 1 -> Insert (Random.State.int rng 10)
  | 2 -> Extract_max
  | _ -> Find_max

let gen_tagged rng ~tag =
  match Random.State.int rng 4 with
  | 0 | 1 -> Insert (tag + 1)
  | 2 -> Extract_max
  | _ -> Find_max

let monitor =
  Some
    {
      Adt_view.kind = Adt_view.Priority_queue;
      obs =
        (fun inv resp ->
          match (inv, resp) with
          | Insert v, Ack -> Adt_view.Put v
          | Extract_max, Max v -> Adt_view.Take v
          | Find_max, Max v -> Adt_view.Peek v
          | Insert _, Max _ | (Extract_max | Find_max), Ack -> Adt_view.Opaque);
      put = (fun v -> Insert v);
      take = Some Extract_max;
      peek = Some Find_max;
      has = None;
      drop = None;
    }
