(* Sequential-specification tests: each concrete data type's semantics,
   plus the derived sequence semantics (legality, replay, equivalence). *)

module Reg = Spec.Register
module Rmw = Spec.Rmw_register
module Q = Spec.Fifo_queue
module S = Spec.Stack_type
module Tree = Spec.Tree_type
module Set = Spec.Set_type
module Cnt = Spec.Counter_type
module Pq = Spec.Priority_queue
module Log = Spec.Log_type

(* --- register --- *)

let test_register () =
  let s0 = Reg.initial in
  Alcotest.(check bool) "initial read" true
    (snd (Reg.apply s0 Reg.Read) = Reg.Value 0);
  let s1, r1 = Reg.apply s0 (Reg.Write 7) in
  Alcotest.(check bool) "write acks" true (r1 = Reg.Ack);
  Alcotest.(check bool) "read after write" true
    (snd (Reg.apply s1 Reg.Read) = Reg.Value 7);
  let s2, _ = Reg.apply s1 (Reg.Write 9) in
  Alcotest.(check bool) "last write wins" true
    (snd (Reg.apply s2 Reg.Read) = Reg.Value 9)

module RegSem = Spec.Data_type.Semantics (Reg)

let test_register_sequences () =
  let instances, _ =
    RegSem.perform_seq [ Reg.Write 1; Reg.Read; Reg.Write 2; Reg.Read ]
  in
  Alcotest.(check bool) "legal replay" true (RegSem.legal instances);
  (* Corrupt a response: the sequence becomes illegal. *)
  let corrupted =
    List.map
      (fun (i : RegSem.instance) ->
        match i.inv with
        | Reg.Read -> { i with resp = Reg.Value 42 }
        | Reg.Write _ -> i)
      instances
  in
  Alcotest.(check bool) "corrupted responses illegal" false
    (RegSem.legal corrupted);
  (* Equivalence is state equality: write 1; write 2 == write 2. *)
  let a, _ = RegSem.perform_seq [ Reg.Write 1; Reg.Write 2 ] in
  let b, _ = RegSem.perform_seq [ Reg.Write 2 ] in
  let c, _ = RegSem.perform_seq [ Reg.Write 1 ] in
  Alcotest.(check bool) "overwrite equivalence" true (RegSem.equivalent a b);
  Alcotest.(check bool) "different writes differ" false (RegSem.equivalent a c);
  (* Prefix closure: every prefix of a legal sequence is legal. *)
  let rec prefixes = function
    | [] -> [ [] ]
    | x :: rest -> [] :: List.map (fun p -> x :: p) (prefixes rest)
  in
  Alcotest.(check bool) "prefix closure" true
    (List.for_all RegSem.legal (prefixes instances))

(* --- RMW register --- *)

let test_rmw () =
  let s0 = Rmw.initial in
  let s1, r1 = Rmw.apply s0 (Rmw.Rmw (Rmw.Fetch_and_add 5)) in
  Alcotest.(check bool) "faa returns old" true (r1 = Rmw.Value 0);
  Alcotest.(check bool) "faa adds" true (s1 = 5);
  let s2, r2 = Rmw.apply s1 (Rmw.Rmw (Rmw.Fetch_and_set 9)) in
  Alcotest.(check bool) "fas returns old" true (r2 = Rmw.Value 5);
  Alcotest.(check bool) "fas sets" true (s2 = 9);
  let s3, r3 = Rmw.apply s2 (Rmw.Rmw (Rmw.Compare_and_swap (9, 1))) in
  Alcotest.(check bool) "cas hit" true (r3 = Rmw.Value 9 && s3 = 1);
  let s4, r4 = Rmw.apply s3 (Rmw.Rmw (Rmw.Compare_and_swap (9, 7))) in
  Alcotest.(check bool) "cas miss leaves state" true (r4 = Rmw.Value 1 && s4 = 1)

(* --- queue --- *)

let test_queue () =
  let s0 = Q.initial in
  Alcotest.(check bool) "dequeue empty" true
    (snd (Q.apply s0 Q.Dequeue) = Q.Got None);
  Alcotest.(check bool) "peek empty" true (snd (Q.apply s0 Q.Peek) = Q.Got None);
  let s1, _ = Q.apply s0 (Q.Enqueue 1) in
  let s2, _ = Q.apply s1 (Q.Enqueue 2) in
  Alcotest.(check bool) "peek head" true (snd (Q.apply s2 Q.Peek) = Q.Got (Some 1));
  let s3, r3 = Q.apply s2 Q.Dequeue in
  Alcotest.(check bool) "FIFO order" true (r3 = Q.Got (Some 1));
  let _, r4 = Q.apply s3 Q.Dequeue in
  Alcotest.(check bool) "second out" true (r4 = Q.Got (Some 2));
  Alcotest.(check bool) "peek does not consume" true
    (snd (Q.apply s2 Q.Peek) = Q.Got (Some 1) && Q.to_list s2 = [ 1; 2 ])

(* --- stack --- *)

let test_stack () =
  let s0 = S.initial in
  Alcotest.(check bool) "pop empty" true (snd (S.apply s0 S.Pop) = S.Got None);
  let s1, _ = S.apply s0 (S.Push 1) in
  let s2, _ = S.apply s1 (S.Push 2) in
  Alcotest.(check bool) "peek top" true (snd (S.apply s2 S.Peek) = S.Got (Some 2));
  let s3, r3 = S.apply s2 S.Pop in
  Alcotest.(check bool) "LIFO order" true (r3 = S.Got (Some 2));
  let _, r4 = S.apply s3 S.Pop in
  Alcotest.(check bool) "bottom last" true (r4 = S.Got (Some 1))

(* --- rooted tree --- *)

let apply_seq apply s invs = List.fold_left (fun s i -> fst (apply s i)) s invs

let test_tree_insert_depth () =
  let t = Tree.initial in
  Alcotest.(check bool) "root depth 0" true
    (snd (Tree.apply t (Tree.Depth 0)) = Tree.Depth_is (Some 0));
  Alcotest.(check bool) "absent depth None" true
    (snd (Tree.apply t (Tree.Depth 3)) = Tree.Depth_is None);
  let t = apply_seq Tree.apply t [ Tree.Insert (1, 0); Tree.Insert (2, 1) ] in
  Alcotest.(check bool) "chain depths" true
    (snd (Tree.apply t (Tree.Depth 1)) = Tree.Depth_is (Some 1)
    && snd (Tree.apply t (Tree.Depth 2)) = Tree.Depth_is (Some 2))

let test_tree_insert_moves () =
  (* Inserting an existing node moves its whole subtree. *)
  let t =
    apply_seq Tree.apply Tree.initial
      [ Tree.Insert (1, 0); Tree.Insert (2, 1); Tree.Insert (3, 2) ]
  in
  let t' = fst (Tree.apply t (Tree.Insert (2, 0))) in
  Alcotest.(check bool) "2 moved under root" true
    (snd (Tree.apply t' (Tree.Depth 2)) = Tree.Depth_is (Some 1));
  Alcotest.(check bool) "3 moved along" true
    (snd (Tree.apply t' (Tree.Depth 3)) = Tree.Depth_is (Some 2))

let test_tree_insert_noops () =
  let t = apply_seq Tree.apply Tree.initial [ Tree.Insert (1, 0) ] in
  (* Absent parent, self-parent, cycle-creating move, root insert. *)
  let unchanged inv = Tree.equal_state t (fst (Tree.apply t inv)) in
  Alcotest.(check bool) "absent parent" true (unchanged (Tree.Insert (5, 9)));
  Alcotest.(check bool) "self parent" true (unchanged (Tree.Insert (1, 1)));
  Alcotest.(check bool) "root unmovable" true (unchanged (Tree.Insert (0, 1)));
  let chain =
    apply_seq Tree.apply Tree.initial [ Tree.Insert (1, 0); Tree.Insert (2, 1) ]
  in
  Alcotest.(check bool) "cycle rejected" true
    (Tree.equal_state chain (fst (Tree.apply chain (Tree.Insert (1, 2)))))

let test_tree_delete () =
  let t =
    apply_seq Tree.apply Tree.initial
      [ Tree.Insert (1, 0); Tree.Insert (2, 1); Tree.Insert (3, 0) ]
  in
  let t' = fst (Tree.apply t (Tree.Delete 1)) in
  Alcotest.(check bool) "subtree removed" true
    (snd (Tree.apply t' (Tree.Depth 1)) = Tree.Depth_is None
    && snd (Tree.apply t' (Tree.Depth 2)) = Tree.Depth_is None);
  Alcotest.(check bool) "sibling survives" true
    (snd (Tree.apply t' (Tree.Depth 3)) = Tree.Depth_is (Some 1));
  Alcotest.(check bool) "deletion register" true
    (snd (Tree.apply t' Tree.Last_removed) = Tree.Removed_was (Some 1));
  (* Deleting an absent node is a no-op, including the register. *)
  let t'' = fst (Tree.apply t' (Tree.Delete 9)) in
  Alcotest.(check bool) "absent delete noop" true (Tree.equal_state t' t'');
  Alcotest.(check bool) "root undeletable" true
    (Tree.equal_state t (fst (Tree.apply t (Tree.Delete 0))))

(* --- set --- *)

let test_set () =
  let s = apply_seq Set.apply Set.initial [ Set.Add 3; Set.Add 1; Set.Add 3 ] in
  Alcotest.(check bool) "sorted canonical state" true (s = [ 1; 3 ]);
  Alcotest.(check bool) "contains" true
    (snd (Set.apply s (Set.Contains 3)) = Set.Mem true
    && snd (Set.apply s (Set.Contains 2)) = Set.Mem false);
  let s1, r1 = Set.apply s Set.Extract_min in
  Alcotest.(check bool) "extract min returns 1" true (r1 = Set.Min (Some 1));
  Alcotest.(check bool) "extract removes" true (s1 = [ 3 ]);
  Alcotest.(check bool) "extract empty" true
    (snd (Set.apply Set.initial Set.Extract_min) = Set.Min None);
  let s2 = fst (Set.apply s (Set.Remove 3)) in
  Alcotest.(check bool) "remove" true (s2 = [ 1 ])

(* --- counter --- *)

let test_counter () =
  let s = apply_seq Cnt.apply Cnt.initial [ Cnt.Add 2; Cnt.Add 3 ] in
  Alcotest.(check bool) "adds accumulate" true (s = 5);
  Alcotest.(check bool) "read" true (snd (Cnt.apply s Cnt.Read) = Cnt.Value 5);
  let s', r = Cnt.apply s Cnt.Fetch_and_increment in
  Alcotest.(check bool) "fai returns old" true (r = Cnt.Value 5 && s' = 6)

(* --- priority queue --- *)

let test_priority_queue () =
  let s = apply_seq Pq.apply Pq.initial [ Pq.Insert 2; Pq.Insert 5; Pq.Insert 2 ] in
  Alcotest.(check bool) "descending multiset" true (s = [ 5; 2; 2 ]);
  Alcotest.(check bool) "find max" true
    (snd (Pq.apply s Pq.Find_max) = Pq.Max (Some 5));
  let s1, r1 = Pq.apply s Pq.Extract_max in
  Alcotest.(check bool) "extract max" true (r1 = Pq.Max (Some 5) && s1 = [ 2; 2 ]);
  Alcotest.(check bool) "duplicates kept" true
    (snd (Pq.apply s1 Pq.Extract_max) = Pq.Max (Some 2));
  Alcotest.(check bool) "empty extract" true
    (snd (Pq.apply Pq.initial Pq.Extract_max) = Pq.Max None);
  (* Insertion order does not matter: commutativity. *)
  let a = apply_seq Pq.apply Pq.initial [ Pq.Insert 1; Pq.Insert 9; Pq.Insert 4 ] in
  let b = apply_seq Pq.apply Pq.initial [ Pq.Insert 9; Pq.Insert 4; Pq.Insert 1 ] in
  Alcotest.(check bool) "insert commutes" true (Pq.equal_state a b)

(* --- log --- *)

let test_log () =
  let s = apply_seq Log.apply Log.initial [ Log.Append 1; Log.Append 2; Log.Append 3 ] in
  Alcotest.(check bool) "last is newest" true
    (snd (Log.apply s Log.Last) = Log.Entry (Some 3));
  Alcotest.(check bool) "length" true (snd (Log.apply s Log.Length) = Log.Count 3);
  let s1, r1 = Log.apply s Log.Trim in
  Alcotest.(check bool) "trim removes oldest" true
    (r1 = Log.Entry (Some 1) && snd (Log.apply s1 Log.Length) = Log.Count 2);
  Alcotest.(check bool) "trim empty" true
    (snd (Log.apply Log.initial Log.Trim) = Log.Entry None);
  (* Append order is fully observable: permutations differ. *)
  let a = apply_seq Log.apply Log.initial [ Log.Append 1; Log.Append 2 ] in
  let b = apply_seq Log.apply Log.initial [ Log.Append 2; Log.Append 1 ] in
  Alcotest.(check bool) "append order observable" false (Log.equal_state a b)

(* --- generic Semantics checks over every type --- *)

let completeness_and_determinism (module T : Spec.Data_type.S) =
  (* apply is total and deterministic by construction; spot-check that
     repeated application from equal states gives equal outcomes. *)
  let module Sem = Spec.Data_type.Semantics (T) in
  let rng1 = Random.State.make [| 11 |] and rng2 = Random.State.make [| 11 |] in
  let invs1 = List.init 30 (fun _ -> T.gen_invocation rng1) in
  let invs2 = List.init 30 (fun _ -> T.gen_invocation rng2) in
  let i1, s1 = Sem.perform_seq invs1 in
  let i2, s2 = Sem.perform_seq invs2 in
  T.equal_state s1 s2
  && List.for_all2 Sem.equal_instance i1 i2
  && Sem.legal i1

let all_types_deterministic () =
  List.iter
    (fun (name, result) ->
      Alcotest.(check bool) (name ^ " deterministic & complete") true result)
    [
      ("register", completeness_and_determinism (module Reg));
      ("rmw-register", completeness_and_determinism (module Rmw));
      ("fifo-queue", completeness_and_determinism (module Q));
      ("stack", completeness_and_determinism (module S));
      ("rooted-tree", completeness_and_determinism (module Tree));
      ("int-set", completeness_and_determinism (module Set));
      ("counter", completeness_and_determinism (module Cnt));
      ("priority-queue", completeness_and_determinism (module Pq));
      ("log", completeness_and_determinism (module Log));
    ]

let sample_invocations_belong () =
  let check_type (module T : Spec.Data_type.S) =
    List.for_all
      (fun (op, _) ->
        let samples = T.sample_invocations op in
        samples <> [] && List.for_all (fun inv -> T.op_of inv = op) samples)
      T.operations
  in
  List.iter
    (fun (name, r) -> Alcotest.(check bool) (name ^ " samples consistent") true r)
    [
      ("register", check_type (module Reg));
      ("rmw-register", check_type (module Rmw));
      ("fifo-queue", check_type (module Q));
      ("stack", check_type (module S));
      ("rooted-tree", check_type (module Tree));
      ("int-set", check_type (module Set));
      ("counter", check_type (module Cnt));
      ("priority-queue", check_type (module Pq));
      ("log", check_type (module Log));
    ]

(* qcheck: random queue invocation sequences keep FIFO discipline — the
   dequeued values are exactly a prefix of the enqueued ones. *)
let prop_queue_fifo =
  QCheck.Test.make ~name:"queue: dequeues return enqueues in order" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 40) (int_range 0 5))
    (fun script ->
      (* Interpret ints: 0-3 enqueue that value, 4 dequeue, 5 peek. *)
      let invs =
        List.map
          (fun k ->
            if k = 4 then Q.Dequeue else if k = 5 then Q.Peek else Q.Enqueue k)
          script
      in
      let module QSem = Spec.Data_type.Semantics (Q) in
      let instances, _ = QSem.perform_seq invs in
      let enqueued =
        List.filter_map
          (fun (i : QSem.instance) ->
            match i.inv with Q.Enqueue v -> Some v | _ -> None)
          instances
      in
      let dequeued =
        List.filter_map
          (fun (i : QSem.instance) ->
            match (i.inv, i.resp) with
            | Q.Dequeue, Q.Got (Some v) -> Some v
            | _ -> None)
          instances
      in
      let rec is_prefix a b =
        match (a, b) with
        | [], _ -> true
        | x :: xs, y :: ys -> x = y && is_prefix xs ys
        | _ :: _, [] -> false
      in
      is_prefix dequeued enqueued)

(* qcheck: tree invariant — every stored node has a well-defined
   positive depth (parents exist, no cycles), under any sequence. *)
let prop_tree_well_formed =
  QCheck.Test.make ~name:"tree: parents exist and acyclic" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let invs = List.init 50 (fun _ -> Tree.gen_invocation rng) in
      let module TSem = Spec.Data_type.Semantics (Tree) in
      let _, state = TSem.perform_seq invs in
      let nodes = List.map fst state.parents in
      List.for_all
        (fun node ->
          match snd (Tree.apply state (Tree.Depth node)) with
          | Tree.Depth_is (Some depth) -> depth >= 1
          | _ -> false)
        nodes)

let prop_set_sorted =
  QCheck.Test.make ~name:"set: state stays strictly sorted" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let invs = List.init 60 (fun _ -> Set.gen_invocation rng) in
      let module SSem = Spec.Data_type.Semantics (Set) in
      let _, state = SSem.perform_seq invs in
      let rec sorted = function
        | [] | [ _ ] -> true
        | a :: (b :: _ as rest) -> a < b && sorted rest
      in
      sorted state)

let () =
  Alcotest.run "spec_types"
    [
      ( "types",
        [
          Alcotest.test_case "register" `Quick test_register;
          Alcotest.test_case "register sequences" `Quick test_register_sequences;
          Alcotest.test_case "rmw register" `Quick test_rmw;
          Alcotest.test_case "queue" `Quick test_queue;
          Alcotest.test_case "stack" `Quick test_stack;
          Alcotest.test_case "tree insert/depth" `Quick test_tree_insert_depth;
          Alcotest.test_case "tree insert moves" `Quick test_tree_insert_moves;
          Alcotest.test_case "tree insert noops" `Quick test_tree_insert_noops;
          Alcotest.test_case "tree delete" `Quick test_tree_delete;
          Alcotest.test_case "set" `Quick test_set;
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "priority queue" `Quick test_priority_queue;
          Alcotest.test_case "log" `Quick test_log;
        ] );
      ( "framework",
        [
          Alcotest.test_case "determinism & completeness" `Quick
            all_types_deterministic;
          Alcotest.test_case "sample invocations" `Quick
            sample_invocations_belong;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_queue_fifo; prop_tree_well_formed; prop_set_sorted ] );
    ]
