(* Tests for the clock synchronization substrate: one round of
   reading-exchange achieves the Lundelius-Lynch bound (1 - 1/n)u, and
   its output can bootstrap Algorithm 1 at the optimal eps. *)

let rat = Rat.make

(* A model whose eps is generous enough to admit unsynchronized
   clocks; the sync round then brings them within (1 - 1/n)u. *)
let loose_model ~n = Sim.Model.make ~n ~d:(rat 12 1) ~u:(rat 4 1) ~eps:(rat 100 1)

let random_offsets ~n ~seed ~spread =
  let rng = Random.State.make [| seed |] in
  Array.init n (fun _ -> rat (Random.State.int rng spread - (spread / 2)) 1)

let test_estimates_exact_with_midpoint_delays () =
  (* With every delay exactly d - u/2, the estimates are exact and the
     adjusted clocks agree perfectly. *)
  let model = loose_model ~n:4 in
  let offsets = [| rat 10 1; rat (-20) 1; rat 7 1; Rat.zero |] in
  let result =
    Sim.Clock_sync.run ~model ~offsets
      ~delay:(Sim.Net.constant (rat 10 1))
      ()
  in
  Alcotest.(check string) "perfect agreement" "0"
    (Rat.to_string result.achieved_skew)

let test_bound_across_seeds () =
  List.iter
    (fun n ->
      let model = loose_model ~n in
      List.iter
        (fun seed ->
          let offsets = random_offsets ~n ~seed ~spread:60 in
          let result =
            Sim.Clock_sync.run ~model ~offsets
              ~delay:(Sim.Net.random_model ~seed model)
              ()
          in
          Alcotest.(check bool)
            (Printf.sprintf "n=%d seed=%d: skew within (1-1/n)u" n seed)
            true
            (Rat.le result.achieved_skew result.guaranteed_skew);
          Alcotest.(check string)
            (Printf.sprintf "n=%d: guarantee is (1-1/n)u" n)
            (Rat.to_string (Rat.mul (rat 4 1) (rat (n - 1) n)))
            (Rat.to_string result.guaranteed_skew))
        [ 1; 2; 3; 4; 5 ])
    [ 2; 3; 4; 5; 8 ]

let test_adversarial_delays () =
  (* Extreme delays (all d, or all d-u) still respect the bound: the
     estimate errors are then all u/2 in the same direction and mostly
     cancel in the pairwise comparison. *)
  let model = loose_model ~n:4 in
  let offsets = [| rat 30 1; rat (-12) 1; rat 5 1; rat (-3) 1 |] in
  List.iter
    (fun delay ->
      let result = Sim.Clock_sync.run ~model ~offsets ~delay () in
      Alcotest.(check bool) "bound holds" true
        (Rat.le result.achieved_skew result.guaranteed_skew))
    [ Sim.Net.max_delay_model model; Sim.Net.min_delay_model model ];
  (* Asymmetric worst case: fast one way, slow the other. *)
  let m = Sim.Net.uniform_matrix ~n:4 (rat 12 1) in
  m.(0).(1) <- rat 8 1;
  m.(1).(0) <- rat 12 1;
  m.(2).(3) <- rat 8 1;
  let result = Sim.Clock_sync.run ~model ~offsets ~delay:(Sim.Net.matrix m) () in
  Alcotest.(check bool) "asymmetric bound holds" true
    (Rat.le result.achieved_skew result.guaranteed_skew)

let test_centering_preserves_skew () =
  let model = loose_model ~n:4 in
  let offsets = random_offsets ~n:4 ~seed:9 ~spread:40 in
  let result =
    Sim.Clock_sync.run ~model ~offsets
      ~delay:(Sim.Net.random_model ~seed:9 model)
      ()
  in
  let centered = Sim.Clock_sync.centered result in
  let skew arr =
    Rat.to_string
      (Rat.max_list
         (Array.to_list
            (Array.map
               (fun a ->
                 Rat.max_list
                   (Array.to_list (Array.map (fun b -> Rat.abs (Rat.sub a b)) arr)))
               arr)))
  in
  Alcotest.(check string) "centering preserves pairwise skew"
    (Rat.to_string result.achieved_skew)
    (skew centered)

(* The full bootstrap: synchronize, then run Algorithm 1 at the
   optimal eps with the centered post-sync offsets. *)
let test_bootstrap_algorithm1 () =
  let n = 4 in
  let model = loose_model ~n in
  let offsets = random_offsets ~n ~seed:13 ~spread:50 in
  let sync =
    Sim.Clock_sync.run ~model ~offsets
      ~delay:(Sim.Net.random_model ~seed:13 model)
      ()
  in
  let tight = Sim.Model.make_optimal_eps ~n ~d:(rat 12 1) ~u:(rat 4 1) in
  Alcotest.(check bool) "post-sync offsets admissible at optimal eps" true
    (Sim.Model.skew_valid tight (Sim.Clock_sync.centered sync));
  let module R = Core.Runtime.Make (Spec.Fifo_queue) in
  let report =
    R.run
      (R.Config.make ~model:tight
         ~offsets:(Sim.Clock_sync.centered sync)
         ~delay:(Sim.Net.random_model ~seed:14 tight)
         ~algorithm:(R.Wtlw { x = rat 2 1 })
         ~workload:(R.Closed_loop { per_proc = 8; think = rat 1 2; seed = 14 })
         ())
  in
  Alcotest.(check bool) "bootstrapped run linearizable" true (R.ok report)

(* Property: the bound holds for random offsets and random delay
   granularities across n. *)
let prop_bound =
  QCheck.Test.make ~name:"sync bound (1-1/n)u over random instances" ~count:100
    QCheck.(pair (int_range 2 8) (int_range 0 100_000))
    (fun (n, seed) ->
      let model = loose_model ~n in
      let offsets = random_offsets ~n ~seed ~spread:80 in
      let result =
        Sim.Clock_sync.run ~model ~offsets
          ~delay:(Sim.Net.random_model ~seed model)
          ()
      in
      Rat.le result.achieved_skew result.guaranteed_skew)

let () =
  Alcotest.run "clock_sync"
    [
      ( "sync",
        [
          Alcotest.test_case "midpoint delays exact" `Quick
            test_estimates_exact_with_midpoint_delays;
          Alcotest.test_case "bound across seeds" `Quick test_bound_across_seeds;
          Alcotest.test_case "adversarial delays" `Quick test_adversarial_delays;
          Alcotest.test_case "centering" `Quick test_centering_preserves_skew;
          Alcotest.test_case "bootstrap algorithm 1" `Quick
            test_bootstrap_algorithm1;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_bound ]);
    ]
