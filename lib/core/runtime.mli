(** End-to-end harness: build a cluster running a chosen algorithm,
    drive a workload through it, and distill the trace into a report —
    completed operations, a machine-checked linearization, and latency
    summaries per operation and per class. *)

module Make (T : Spec.Data_type.S) : sig
  module Sem : module type of Spec.Data_type.Semantics (T)
  module Checker : module type of Lin.Checker.Make (T)

  type algorithm =
    | Wtlw of { x : Rat.t }  (** the paper's Algorithm 1 (repaired timing) *)
    | Centralized  (** folklore: forward everything to [p_0] *)
    | Tob  (** folklore: clock-based total-order broadcast *)

  val algorithm_name : algorithm -> string

  type workload =
    | Schedule of T.invocation Workload.entry list
        (** open loop: explicit invocation times (caller must respect
            the one-pending-operation constraint) *)
    | Closed_loop of { per_proc : int; think : Rat.t; seed : int }
        (** each process performs [per_proc] random operations, each
            invoked [think] after the previous response *)

  (** Description of the reliable channel a run was layered over
      ({!run_reliable}): its retransmission config, the inflated model
      the report was judged against, and the channel counters. *)
  type channel = {
    config : Reliable.config;
    effective : Sim.Model.t;
    stats : Reliable.stats;
  }

  type report = {
    algorithm : string;
    operations : (T.invocation, T.response) Sim.Trace.operation list;
    linearization : (T.invocation, T.response) Sim.Trace.operation list option;
        (** a legal real-time-respecting total order, when [check] was
            set and one exists *)
    by_op : (string * Metrics.summary) list;
    by_kind : (Spec.Op_kind.t * Metrics.summary) list;
    messages : int;
    events : int;
    pending : int;  (** invocations that never received a response *)
    delays_admissible : bool;
    skew_admissible : bool;
        (** were the clock offsets the processes actually ran with
            (engine offsets + injected perturbations) within the
            model's [eps]? *)
    faults : Sim.Trace.fault_counts;  (** injected-fault counters *)
    truncated : bool;
        (** the run hit the step limit; the report summarizes the
            prefix up to that point *)
    channel : channel option;  (** present for {!run_reliable} runs *)
  }

  val kind_of : T.invocation -> Spec.Op_kind.t

  val run :
    ?check:bool ->
    ?retain_events:bool ->
    ?faults:Sim.Fault.plan ->
    ?max_events:int ->
    model:Sim.Model.t ->
    offsets:Rat.t array ->
    delay:Sim.Net.t ->
    algorithm:algorithm ->
    workload:workload ->
    unit ->
    report
  (** Build, drive to quiescence, and summarize in one pass over the
      trace's streaming sinks.  [check] (default true) controls whether
      the linearizability checker runs.  [retain_events] (default true)
      is forwarded to the engine; with [false] the run keeps no
      per-message event in memory and the report is built entirely from
      the incremental sinks — counts, latency summaries, pairing and
      admissibility are identical to a retained run.  [faults] injects
      a {!Sim.Fault} plan; the resulting damage shows up in the
      report's [faults] counters and its admissibility / pending /
      linearization verdicts.  A run exceeding [max_events] (default
      engine limit) is returned as a partial report with
      [truncated = true] rather than raising. *)

  val run_reliable :
    ?check:bool ->
    ?retain_events:bool ->
    ?faults:Sim.Fault.plan ->
    ?max_events:int ->
    ?config:Reliable.config ->
    model:Sim.Model.t ->
    offsets:Rat.t array ->
    delay:Sim.Net.t ->
    algorithm:algorithm ->
    workload:workload ->
    unit ->
    report
  (** Like {!run}, but the algorithm's handlers are wrapped in the
      {!Reliable} ack/retransmit channel and the whole run — the
      algorithm's internal timing, the admissibility monitor, and
      {!ok} — is judged against the channel's inflated model
      [Reliable.inflated_model] ([d' = d + k * rto] by default, [eps]
      widened by the plan's injected skew).  [config] defaults to
      [Reliable.default_config model].  The report's [channel] field
      records the config, the inflated model and the live channel
      stats.  This is the "recovered" leg of [Robustness]. *)

  val report_of_trace :
    ?skew_admissible:bool ->
    model:Sim.Model.t ->
    algorithm:string ->
    check:bool ->
    ('msg, T.invocation, T.response) Sim.Trace.t ->
    report
  (** Summarize an existing trace (e.g. a hand-built or truncated one)
      from its sink snapshots.  [skew_admissible] (default [true])
      must be supplied by the caller — a bare trace does not know the
      offsets the run used. *)

  val ok : report -> bool
  (** Every operation completed ([pending = 0]), the run was not
      truncated, delays and skew admissible, and a linearization
      found. *)

  val pp_report : Format.formatter -> report -> unit
end
