(** Max-priority queue (multiset semantics).

    [insert] is a commuting pure mutator (not last-sensitive, a
    negative control), [extract_max] a pair-free mixed operation,
    [find_max] a pure accessor. *)

type state = int list  (** multiset, kept descending *)

type invocation = Insert of int | Extract_max | Find_max
type response = Ack | Max of int option

include
  Data_type.S
    with type state := state
     and type invocation := invocation
     and type response := response
