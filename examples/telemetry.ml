(* Telemetry journal with a clock-synchronization preamble.

   Run with: dune exec examples/telemetry.exe

   The full deployment story of the paper, end to end: processes start
   with unsynchronized clocks, run one Lundelius-Lynch exchange round
   (Sim.Clock_sync) to get within the optimal eps = (1 - 1/n)u, and
   then operate a shared append-only log under Algorithm 1 — sensors
   append readings (fast pure mutators), a dashboard polls the newest
   entry and the length (pure accessors), and an auditor trims old
   entries (mixed operations).

   The journal runs with event retention off: everything below — the
   live dashboard feed, the per-sensor message tally, the latency table
   and the linearizability check — comes from the trace's streaming
   sinks, so memory stays O(operations) no matter how long the journal
   runs. *)

module Log = Spec.Log_type
module Algo = Core.Wtlw.Make (Log)
module Checker = Lin.Checker.Make (Log)

let rat = Rat.make
let n = 4
let d = rat 10 1
let u = rat 4 1

let () =
  (* Phase 1: clock synchronization.  Raw offsets are way beyond any
     useful skew bound. *)
  let loose = Sim.Model.make ~n ~d ~u ~eps:(rat 1000 1) in
  let raw = [| rat 120 1; rat (-45) 1; rat 13 1; rat (-260) 1 |] in
  let sync =
    Sim.Clock_sync.run ~model:loose ~offsets:raw
      ~delay:(Sim.Net.random_model ~seed:2026 loose)
      ()
  in
  Format.printf "clock sync: raw skew %s -> achieved %s (bound (1-1/n)u = %s)@."
    (Rat.to_string (Sim.Clock_sync.max_pairwise raw))
    (Rat.to_string sync.achieved_skew)
    (Rat.to_string sync.guaranteed_skew);
  assert (Rat.le sync.achieved_skew sync.guaranteed_skew);

  (* Phase 2: the journal, on the synchronized clocks. *)
  let model = Sim.Model.make_optimal_eps ~n ~d ~u in
  let offsets = Sim.Clock_sync.centered sync in
  assert (Sim.Model.skew_valid model offsets);
  let cluster =
    Algo.create ~retain_events:false ~model ~x:(rat 1 1) ~offsets
      ~delay:(Sim.Net.random_model ~seed:7 model)
      ()
  in
  let trace = Sim.Engine.trace cluster.engine in

  (* Streaming observers, attached before the run starts.  The
     dashboard prints poll results the moment each response lands; the
     custom sink tallies protocol messages per sensor as they are
     sent. *)
  let sends_from = Array.make n 0 in
  Sim.Trace.add_sink trace
    {
      name = "per-process-send-tally";
      on_event =
        (function
        | Sim.Trace.Send { src; _ } ->
            sends_from.(src) <- sends_from.(src) + 1
        | _ -> ());
    };
  Format.printf "@.dashboard (live):@.";
  Sim.Trace.on_operation trace (fun (op : (Log.invocation, Log.response) Sim.Trace.operation) ->
      match (op.inv, op.resp) with
      | Log.Last, Log.Entry e ->
          Format.printf "  [t=%s] newest reading: %s@."
            (Rat.to_string op.resp_time)
            (match e with Some v -> string_of_int v | None -> "-")
      | Log.Length, Log.Count c ->
          Format.printf "  [t=%s] journal length: %d@."
            (Rat.to_string op.resp_time)
            c
      | Log.Trim, Log.Entry e ->
          Format.printf "  [t=%s] auditor archived: %s@."
            (Rat.to_string op.resp_time)
            (match e with Some v -> string_of_int v | None -> "-")
      | _ -> ());
  let at k = rat (k * 30) 1 in
  let schedule =
    List.concat
      [
        (* Sensors p0/p1 append readings. *)
        List.init 4 (fun k ->
            Core.Workload.entry ~proc:0 ~at:(at k) (Log.Append (100 + k)));
        List.init 4 (fun k ->
            Core.Workload.entry ~proc:1
              ~at:(Rat.add (at k) (rat 7 1))
              (Log.Append (200 + k)));
        (* Dashboard p2 polls. *)
        List.init 3 (fun k ->
            Core.Workload.entry ~proc:2
              ~at:(Rat.add (at k) (rat 15 1))
              (if k mod 2 = 0 then Log.Last else Log.Length));
        (* Auditor p3 trims after the bursts. *)
        [ Core.Workload.entry ~proc:3 ~at:(at 5) Log.Trim ];
        [ Core.Workload.entry ~proc:3 ~at:(at 6) Log.Length ];
      ]
  in
  List.iter
    (fun { Core.Workload.proc; at; inv } ->
      Sim.Engine.schedule_invoke cluster.engine ~at ~proc inv)
    (Core.Workload.sort_schedule schedule);
  Sim.Engine.run cluster.engine;

  (* Even with retention off, the pairing sink kept every completed
     operation, so the checker and the latency table still work. *)
  let ops = Sim.Trace.operations trace in
  assert (Checker.is_linearizable ops);
  assert (Sim.Trace.delays_admissible model trace);
  assert (Sim.Trace.first_inadmissible trace = None);
  assert (Algo.replicas_converged cluster);

  Format.printf "@.messages sent per process:";
  Array.iteri (fun p c -> Format.printf " p%d=%d" p c) sends_from;
  Format.printf " (total %d)@." (Sim.Trace.send_count trace);

  (* Latencies: appends are fast (X + eps), polls medium (d - X + eps),
     trims slow (d + eps) — the paper's three-class story. *)
  Format.printf "@.latency per operation:@.";
  List.iter
    (fun (name, s) ->
      Format.printf "  %-8s %a@." name Core.Metrics.pp_summary s)
    (Core.Metrics.by_op ~op_of:Log.op_of ops);
  let final = Algo.replica_state cluster 0 in
  Format.printf "@.final journal (newest first): %s@." (Log.show_state final);
  print_endline "\ntelemetry OK"
