(** Latency measurement over completed operations.

    The paper's complexity measure [|OP|] is the supremum of
    response-minus-invocation time over all admissible runs.  For the
    paper's algorithm the latency of an operation is timer-determined
    (a constant per class), so the maximum over any run equals the true
    bound; for the baselines, adversarial delay schedules realize the
    worst case. *)

type summary = { count : int; min : Rat.t; max : Rat.t; mean : Rat.t }

let latency (op : ('inv, 'resp) Sim.Trace.operation) =
  Rat.sub op.resp_time op.inv_time

let summarize = function
  | [] -> None
  | latencies ->
      let count = List.length latencies in
      Some
        {
          count;
          min = Rat.min_list latencies;
          max = Rat.max_list latencies;
          mean = Rat.div_int (Rat.sum latencies) count;
        }

(* Group latencies by an operation-derived key, preserving first-seen
   key order. *)
let group_by ~key ops =
  let order = ref [] in
  let table = Hashtbl.create 8 in
  List.iter
    (fun op ->
      let k = key op in
      if not (Hashtbl.mem table k) then begin
        order := k :: !order;
        Hashtbl.add table k []
      end;
      Hashtbl.replace table k (latency op :: Hashtbl.find table k))
    ops;
  List.rev_map
    (fun k -> (k, Option.get (summarize (List.rev (Hashtbl.find table k)))))
    !order

let by_op ~op_of ops = group_by ~key:(fun op -> op_of op.Sim.Trace.inv) ops

let by_kind ~kind_of ops = group_by ~key:(fun op -> kind_of op.Sim.Trace.inv) ops

let max_latency ops =
  match ops with
  | [] -> None
  | _ -> Some (Rat.max_list (List.map latency ops))

let pp_summary ppf s =
  Format.fprintf ppf "n=%d min=%a max=%a mean=%a" s.count Rat.pp s.min Rat.pp
    s.max Rat.pp s.mean
