(** FIFO queue of integers (paper Table 2).

    [enqueue v] appends (pure mutator, last-sensitive: a long enough
    string of dequeues reveals which enqueue came last); [dequeue]
    removes and returns the head, [None] on empty (mixed, pair-free);
    [peek] returns the head without removing it (pure accessor).
    [enqueue]/[peek] form the paper's example pair for Theorem 5's
    discriminator hypotheses. *)

(* Batched queue (front + reversed back) so [Enqueue] costs O(1)
   instead of an O(n) append — million-operation monitor workloads
   replay against this specification.  The canonical state remains the
   head-first list: [equal_state] and [show_state] go through
   [to_list], so differently-batched equal queues are
   indistinguishable, as {!Data_type.S} requires. *)
type state = { front : int list; back : int list }

type invocation = Enqueue of int | Dequeue | Peek
[@@deriving show { with_path = false }, eq]

type response = Ack | Got of int option
[@@deriving show { with_path = false }, eq]

let name = "fifo-queue"
let initial = { front = []; back = [] }
let to_list s = s.front @ List.rev s.back

(* invariant: [front] empty only when the queue is *)
let norm = function
  | { front = []; back } -> { front = List.rev back; back = [] }
  | s -> s

let apply state = function
  | Enqueue v -> (norm { state with back = v :: state.back }, Ack)
  | Dequeue -> (
      match state.front with
      | [] -> (state, Got None)
      | head :: tail -> (norm { state with front = tail }, Got (Some head)))
  | Peek -> (
      match state.front with
      | [] -> (state, Got None)
      | head :: _ -> (state, Got (Some head)))

let op_of = function
  | Enqueue _ -> "enqueue"
  | Dequeue -> "dequeue"
  | Peek -> "peek"

let operations =
  [
    ("enqueue", Op_kind.Pure_mutator);
    ("dequeue", Op_kind.Mixed);
    ("peek", Op_kind.Pure_accessor);
  ]

let equal_state a b = to_list a = to_list b
let equal_invocation = equal_invocation
let equal_response = equal_response

let pp_state ppf s =
  Format.fprintf ppf "[%s]"
    (String.concat "; " (List.map string_of_int (to_list s)))

let show_state s = Format.asprintf "%a" pp_state s

let sample_invocations = function
  | "enqueue" -> [ Enqueue 1; Enqueue 2; Enqueue 3; Enqueue 4 ]
  | "dequeue" -> [ Dequeue ]
  | "peek" -> [ Peek ]
  | op -> invalid_arg ("fifo-queue: unknown operation " ^ op)

let gen_invocation rng =
  match Random.State.int rng 4 with
  | 0 | 1 -> Enqueue (Random.State.int rng 10)
  | 2 -> Dequeue
  | _ -> Peek

let gen_tagged rng ~tag =
  match Random.State.int rng 4 with
  | 0 | 1 -> Enqueue (tag + 1)
  | 2 -> Dequeue
  | _ -> Peek

let monitor =
  Some
    {
      Adt_view.kind = Adt_view.Queue;
      obs =
        (fun inv resp ->
          match (inv, resp) with
          | Enqueue v, Ack -> Adt_view.Put v
          | Dequeue, Got v -> Adt_view.Take v
          | Peek, Got v -> Adt_view.Peek v
          | Enqueue _, Got _ | (Dequeue | Peek), Ack -> Adt_view.Opaque);
      put = (fun v -> Enqueue v);
      take = Some Dequeue;
      peek = Some Peek;
      has = None;
      drop = None;
    }
