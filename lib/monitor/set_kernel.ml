(* Set monitor: values are mutually independent, so the history
   decomposes per value — each value sees at most one [Put] (add), at
   most one [Drop] (remove; more than one falls back), and any number
   of [Has] membership tests.

   Necessary patterns per value:
   - [set.fresh]       membership true although the value was never added;
   - [set.before-add]  membership true entirely before the add;
   - [set.after-drop]  membership true although the remove is forced
                       between the add and the test;
   - [set.false-read]  membership false although the add is forced
                       before the test and the remove (if any) after it.

   Certificate: per value, place the add as early and the (active)
   remove as late as their intervals allow, route each membership test
   to the matching side, and give every operation a virtual
   linearization point inside its own interval.  Sorting all
   operations of all values by these points yields a global order that
   respects real time whenever the points do — the dispatcher's replay
   and sweep confirm it.  Any per-value infeasibility returns [Unknown]
   and the history goes to Wing-Gong. *)

module V = Spec.Adt_view

let kind = V.Set

type value_ops = {
  value : int;
  mutable add : Record.t option;
  mutable drops : Record.t list;
  mutable yes : Record.t list;  (** Has (v, true) *)
  mutable no : Record.t list;  (** Has (v, false) *)
}

(* Virtual linearization point: primary key the rational point, [seq]
   breaks exact ties in per-value semantic order (false-before /
   inactive drop, add, true tests, active drop, false-after). *)
type keyed = { key : Rat.t; seq : int; id : int }

let check (records : Record.t array) : Record.outcome =
  let table : (int, value_ops) Hashtbl.t = Hashtbl.create 97 in
  let ops_for v =
    match Hashtbl.find_opt table v with
    | Some o -> o
    | None ->
        let o = { value = v; add = None; drops = []; yes = []; no = [] } in
        Hashtbl.add table v o;
        o
  in
  let bad = ref None in
  let flag o = if !bad = None then bad := Some o in
  Array.iter
    (fun (r : Record.t) ->
      match r.obs with
      | V.Put v -> (
          let o = ops_for v in
          match o.add with
          | Some _ ->
              flag
                (Record.Unknown
                   (Printf.sprintf "value %d added twice; ambiguous" v))
          | None -> o.add <- Some r)
      | V.Drop v ->
          let o = ops_for v in
          o.drops <- r :: o.drops
      | V.Has (v, b) ->
          let o = ops_for v in
          if b then o.yes <- r :: o.yes else o.no <- r :: o.no
      | _ ->
          flag
            (Record.Unknown
               (Printf.sprintf "observation %s outside set vocabulary"
                  (V.obs_to_string r.obs))))
    records;
  let keyed = ref [] in
  let emit key seq (r : Record.t) =
    keyed := { key; seq; id = r.id } :: !keyed
  in
  let solve (o : value_ops) =
    if !bad <> None then ()
    else
      match o.add with
      | None -> (
          (* never added: membership must read false, drops are no-ops *)
          match o.yes with
          | t :: _ ->
              flag
                (Record.violation ~kind ~rule:"set.fresh" [ t ]
                   (Printf.sprintf
                      "membership of %d observed but value never added"
                      o.value))
          | [] ->
              List.iter
                (fun (r : Record.t) -> emit r.start 0 r)
                (o.drops @ o.no))
      | Some add -> (
          let drop =
            match o.drops with
            | [] -> None
            | [ d ] -> Some d
            | _ :: _ :: _ ->
                flag
                  (Record.Unknown
                     (Printf.sprintf "value %d removed twice; ambiguous"
                        o.value));
                None
          in
          if !bad <> None then ()
          else begin
            (* necessary patterns first *)
            List.iter
              (fun (t : Record.t) ->
                if Rat.lt t.finish add.start then
                  flag
                    (Record.violation ~kind ~rule:"set.before-add" [ t; add ]
                       (Printf.sprintf
                          "membership of %d observed entirely before its add"
                          o.value))
                else
                  match drop with
                  | Some d
                    when Rat.lt add.finish d.start && Rat.lt d.finish t.start
                    ->
                      flag
                        (Record.violation ~kind ~rule:"set.after-drop"
                           [ t; add; d ]
                           (Printf.sprintf
                              "membership of %d observed after a forced \
                               remove"
                              o.value))
                  | _ -> ())
              o.yes;
            List.iter
              (fun (f : Record.t) ->
                if
                  Rat.lt add.finish f.start
                  &&
                  match drop with
                  | None -> true
                  | Some d -> Rat.lt f.finish d.start
                then
                  flag
                    (Record.violation ~kind ~rule:"set.false-read"
                       ([ f; add ] @ Option.to_list drop)
                       (Printf.sprintf
                          "absence of %d observed while it is forced present"
                          o.value)))
              o.no;
            if !bad <> None then ()
            else begin
              (* certificate: add early, active drop late *)
              let pa = add.start in
              let active =
                (* a drop finishing before the add can start must be the
                   inactive (no-op, pre-add) kind *)
                match drop with
                | Some d when Rat.le pa d.finish -> Some d
                | _ -> None
              in
              let inactive =
                match (drop, active) with
                | Some d, None -> Some d
                | _ -> None
              in
              let pd = Option.map (fun (d : Record.t) -> d.finish) active in
              let infeasible = ref None in
              let need msg cond = if not cond && !infeasible = None then infeasible := Some msg in
              Option.iter
                (fun (d : Record.t) ->
                  need "inactive remove after add" (Rat.le d.start pa))
                inactive;
              List.iter
                (fun (t : Record.t) ->
                  need "membership test outside presence window"
                    (Rat.le pa t.finish
                    &&
                    match pd with
                    | None -> true
                    | Some pd -> Rat.le (Rat.max t.start pa) pd))
                o.yes;
              List.iter
                (fun (f : Record.t) ->
                  need "false test inside presence window"
                    (Rat.le f.start pa
                    || match pd with None -> false | Some pd -> Rat.le pd f.finish))
                o.no;
              match !infeasible with
              | Some msg ->
                  flag
                    (Record.Unknown
                       (Printf.sprintf "set value %d: %s" o.value msg))
              | None ->
                  Option.iter (fun (d : Record.t) -> emit d.start 0 d) inactive;
                  emit pa 1 add;
                  List.iter
                    (fun (t : Record.t) -> emit (Rat.max t.start pa) 2 t)
                    o.yes;
                  Option.iter (fun (d : Record.t) -> emit d.finish 3 d) active;
                  List.iter
                    (fun (f : Record.t) ->
                      if Rat.le f.start pa then emit f.start 0 f
                      else
                        emit
                          (match pd with
                          | Some pd -> Rat.max f.start pd
                          | None -> f.start)
                          4 f)
                    o.no
            end
          end)
  in
  Hashtbl.iter (fun _ o -> solve o) table;
  match !bad with
  | Some o -> o
  | None ->
      let sorted =
        List.sort
          (fun a b ->
            let c = Rat.compare a.key b.key in
            if c <> 0 then c
            else
              let c = compare a.seq b.seq in
              if c <> 0 then c else compare a.id b.id)
          !keyed
      in
      Order (List.map (fun k -> k.id) sorted)
