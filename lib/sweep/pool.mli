(** Fixed domain pool over a bounded, indexed work queue.

    [map ~jobs ~fail_fast ~n ~init ~f] evaluates [f local i] for every
    [i] in [0 .. n-1], sharding indices across [jobs] OCaml domains
    (inline on the calling domain when [jobs = 1]).  Each domain gets
    its own [init ()] local state (e.g. streaming metric accumulators);
    the locals are returned for the caller to merge at the barrier.

    Outcomes are positional: escaped exceptions become [Failed] with
    the exception's rendering.  Under [fail_fast], the first failure
    stops the pool promptly — in-flight cells complete and keep their
    outcome, unclaimed cells are left [Skipped]; no report is lost.
    [should_stop] (default: never) is polled before each claim and
    stops the pool the same graceful way, for external cancellation
    (SIGINT, deadlines, tests).

    [f]'s behaviour must depend only on its index (derive randomness
    from the work item's coordinates, never from [Domain.self ()]); the
    outcome array is then identical for every [jobs] count. *)

type 'a outcome = Done of 'a | Failed of string | Skipped

val outcome_ok : 'a outcome -> bool

val map :
  ?should_stop:(unit -> bool) ->
  jobs:int ->
  fail_fast:bool ->
  n:int ->
  init:(unit -> 'l) ->
  ('l -> int -> ('r, string) result) ->
  'r outcome array * 'l list
(** The locals list has one entry per domain, in domain order.
    (The worker function is positional so the optional [should_stop]
    stays erasable.) *)

(** Process-wide graceful-shutdown flag wired to SIGINT/SIGTERM.

    {!install} registers handlers that flip an atomic flag (readable
    via {!requested}, suitable as [should_stop]) and then restore the
    default disposition, so a second signal force-kills the process.
    {!request} raises the flag programmatically; {!reset} clears it
    (tests). *)
module Interrupt : sig
  val install : unit -> unit
  val requested : unit -> bool
  val request : unit -> unit
  val reset : unit -> unit
end
